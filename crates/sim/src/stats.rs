//! Per-run statistics and the optional event trace.

use crate::time::{SimDuration, SimTime};

/// Per-node accounting.
#[derive(Debug, Clone, Default)]
pub struct NodeReport {
    /// Time spent computing (including message software overheads).
    pub busy: SimDuration,
    /// Time spent blocked in communication (from posting a blocking
    /// operation to resuming).
    pub blocked: SimDuration,
    /// Messages this node sent.
    pub msgs_sent: u64,
    /// User bytes this node sent.
    pub payload_sent: u64,
    /// Local clock when the node's program finished.
    pub finished_at: SimTime,
}

/// Simulator performance counters: the *host* cost of a run, as opposed to
/// everything else in [`SimReport`], which is *simulated* machine behaviour.
/// Deterministic fields (events, recomputes, flows) are a pure function of
/// the configuration; `wall_secs` is not and must never feed back into
/// simulated results.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimPerf {
    /// Discrete events processed by the engine loop.
    pub events: u64,
    /// Rate recomputations performed by the network solver.
    pub recomputes: u64,
    /// Total flows admitted to the network.
    pub flows: u64,
    /// Peak simultaneous active flows.
    pub flows_peak: usize,
    /// Host wall-clock seconds spent in the engine loop.
    pub wall_secs: f64,
}

impl SimPerf {
    /// Events processed per host wall-clock second (0 when unmeasured).
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.events as f64 / self.wall_secs
        } else {
            0.0
        }
    }
}

/// Everything measured during one simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Completion time of the last node — the number every figure plots.
    pub makespan: SimDuration,
    /// Per-node accounting.
    pub nodes: Vec<NodeReport>,
    /// Total point-to-point messages delivered.
    pub messages: u64,
    /// Total user bytes delivered.
    pub payload_bytes: u64,
    /// Total wire bytes (packets × 20 B) delivered.
    pub wire_bytes: u64,
    /// Messages whose route crossed the root of the fat tree
    /// (the paper's "global exchanges").
    pub root_crossings: u64,
    /// Wire bytes carried per tree level (index 0 = leaf links).
    pub bytes_per_level: Vec<f64>,
    /// Barriers and other control-network collectives completed.
    pub collectives: u64,
    /// Optional event trace (enabled via
    /// [`crate::engine::Simulation::record_trace`]).
    pub trace: Vec<TraceEvent>,
    /// Host-side performance counters for the run (never part of the
    /// simulated results; excluded from determinism comparisons).
    pub perf: SimPerf,
}

impl SimReport {
    /// Mean blocked fraction across nodes: blocked / (busy + blocked).
    pub fn mean_blocked_fraction(&self) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        let mut acc = 0.0;
        for n in &self.nodes {
            let total = n.busy.as_nanos() + n.blocked.as_nanos();
            if total > 0 {
                acc += n.blocked.as_nanos() as f64 / total as f64;
            }
        }
        acc / self.nodes.len() as f64
    }

    /// Effective delivered user bandwidth over the whole run, bytes/second.
    pub fn effective_bandwidth(&self) -> f64 {
        let secs = self.makespan.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.payload_bytes as f64 / secs
        }
    }
}

/// One entry of the optional event trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time of the event.
    pub time: SimTime,
    /// What happened.
    pub kind: TraceKind,
}

/// Trace event kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceKind {
    /// A message transfer began (both sides matched).
    MsgStart {
        /// Sender.
        src: usize,
        /// Receiver.
        dst: usize,
        /// User bytes.
        bytes: u64,
    },
    /// A message transfer completed.
    MsgDone {
        /// Sender.
        src: usize,
        /// Receiver.
        dst: usize,
        /// User bytes.
        bytes: u64,
    },
    /// A control-network collective completed.
    CollectiveDone {
        /// Human-readable collective kind.
        what: &'static str,
    },
    /// A node's program finished.
    NodeDone {
        /// The node.
        node: usize,
    },
}
