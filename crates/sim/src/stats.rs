//! Per-run statistics and the optional event trace.

use crate::time::{SimDuration, SimTime};

/// Per-node accounting.
#[derive(Debug, Clone, Default)]
pub struct NodeReport {
    /// Time spent computing (including message software overheads).
    pub busy: SimDuration,
    /// Time spent blocked in communication (from posting a blocking
    /// operation to resuming).
    pub blocked: SimDuration,
    /// Messages this node sent.
    pub msgs_sent: u64,
    /// User bytes this node sent.
    pub payload_sent: u64,
    /// Local clock when the node's program finished.
    pub finished_at: SimTime,
}

/// Simulator performance counters: the *host* cost of a run, as opposed to
/// everything else in [`SimReport`], which is *simulated* machine behaviour.
/// Deterministic fields (events, recomputes, flows) are a pure function of
/// the configuration; `wall_secs` is not and must never feed back into
/// simulated results.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimPerf {
    /// Discrete events processed by the engine loop.
    pub events: u64,
    /// Rate recomputations performed by the network solver.
    pub recomputes: u64,
    /// Total flows admitted to the network.
    pub flows: u64,
    /// Peak simultaneous active flows.
    pub flows_peak: usize,
    /// Host wall-clock seconds spent in the engine loop.
    pub wall_secs: f64,
    /// Time windows executed by the parallel engine (0 for serial runs).
    pub windows: u64,
    /// Per-worker count of speculated node actions (empty for serial runs).
    pub worker_events: Vec<u64>,
    /// Host wall-clock seconds the merge thread spent staging windows and
    /// collecting worker results (0 for serial runs).
    pub merge_secs: f64,
}

impl SimPerf {
    /// Events processed per host wall-clock second (0 when unmeasured).
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.events as f64 / self.wall_secs
        } else {
            0.0
        }
    }
}

/// Everything measured during one simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Completion time of the last node — the number every figure plots.
    pub makespan: SimDuration,
    /// Per-node accounting.
    pub nodes: Vec<NodeReport>,
    /// Total point-to-point messages delivered.
    pub messages: u64,
    /// Total user bytes delivered.
    pub payload_bytes: u64,
    /// Total wire bytes (packets × 20 B) delivered.
    pub wire_bytes: u64,
    /// Messages whose route crossed the root of the fat tree
    /// (the paper's "global exchanges").
    pub root_crossings: u64,
    /// Wire bytes carried per tree level (index 0 = leaf links).
    pub bytes_per_level: Vec<f64>,
    /// Barriers and other control-network collectives completed.
    pub collectives: u64,
    /// Optional event trace (enabled via
    /// [`crate::engine::Simulation::record_trace`]).
    pub trace: Vec<TraceEvent>,
    /// Events evicted from a bounded trace ring
    /// ([`crate::engine::Simulation::trace_capacity`]); 0 when unbounded.
    pub trace_dropped: u64,
    /// Piecewise-constant per-link rate samples from the flow solver
    /// (enabled via [`crate::engine::Simulation::record_rates`]); one entry
    /// per rate recomputation, empty when disabled.
    pub rate_samples: Vec<RateSample>,
    /// Peak buffered payload bytes per node over the run: eager messages
    /// resident in the mailbox plus non-blocking rendezvous sends parked at
    /// the destination. The differential for `cm5-verify`'s static
    /// occupancy bounds — measured peaks must never exceed them.
    pub buffer_peak: Vec<u64>,
    /// Host-side performance counters for the run (never part of the
    /// simulated results; excluded from determinism comparisons).
    pub perf: SimPerf,
}

impl SimReport {
    /// Mean blocked fraction across nodes: blocked / (busy + blocked).
    pub fn mean_blocked_fraction(&self) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        let mut acc = 0.0;
        for n in &self.nodes {
            let total = n.busy.as_nanos() + n.blocked.as_nanos();
            if total > 0 {
                acc += n.blocked.as_nanos() as f64 / total as f64;
            }
        }
        acc / self.nodes.len() as f64
    }

    /// Effective delivered user bandwidth over the whole run, bytes/second.
    pub fn effective_bandwidth(&self) -> f64 {
        let secs = self.makespan.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.payload_bytes as f64 / secs
        }
    }
}

/// One snapshot of the flow solver's per-link rate assignment, taken at a
/// rate recomputation. Rates are piecewise-constant: the sample at `time`
/// holds until the next sample (or the end of the run).
#[derive(Debug, Clone, PartialEq)]
pub struct RateSample {
    /// Virtual time of the recompute.
    pub time: SimTime,
    /// Aggregate allocated rate per link as `(link index, bytes/second)`,
    /// ascending by link index, links with zero rate omitted.
    pub link_rates: Vec<(u32, f64)>,
}

/// One entry of the optional event trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time of the event.
    pub time: SimTime,
    /// What happened.
    pub kind: TraceKind,
}

/// Trace event kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceKind {
    /// A message transfer began (both sides matched).
    MsgStart {
        /// Sender.
        src: usize,
        /// Receiver.
        dst: usize,
        /// User bytes.
        bytes: u64,
        /// Message tag (for lowered schedules, the schedule step index).
        tag: u32,
    },
    /// A message transfer completed.
    MsgDone {
        /// Sender.
        src: usize,
        /// Receiver.
        dst: usize,
        /// User bytes.
        bytes: u64,
        /// Message tag (for lowered schedules, the schedule step index).
        tag: u32,
    },
    /// A control-network collective completed.
    CollectiveDone {
        /// Human-readable collective kind.
        what: &'static str,
        /// When the first node arrived at the collective (the span start).
        first_arrival: SimTime,
    },
    /// A node resumed after a blocking wait that started at `since`
    /// (emitted at resume time, so the blocked span is self-contained).
    BlockedEnd {
        /// The node.
        node: usize,
        /// When the node posted the blocking operation.
        since: SimTime,
    },
    /// A node's program finished.
    NodeDone {
        /// The node.
        node: usize,
    },
}

/// Preallocated trace sink. Unbounded rings behave like a plain vector;
/// bounded rings overwrite the oldest event once full and count evictions,
/// so long runs can keep a tail window of the trace at fixed memory cost.
#[derive(Debug, Clone, Default)]
pub struct TraceRing {
    buf: Vec<TraceEvent>,
    /// 0 = unbounded.
    cap: usize,
    /// Index of the oldest event once the bounded buffer has wrapped.
    head: usize,
    dropped: u64,
}

impl TraceRing {
    /// An unbounded ring preallocated for about `hint` events.
    pub fn unbounded(hint: usize) -> TraceRing {
        TraceRing {
            buf: Vec::with_capacity(hint),
            cap: 0,
            head: 0,
            dropped: 0,
        }
    }

    /// A bounded ring holding the most recent `cap` events (`cap ≥ 1`).
    pub fn bounded(cap: usize) -> TraceRing {
        assert!(cap >= 1, "bounded trace ring needs capacity >= 1");
        TraceRing {
            buf: Vec::with_capacity(cap),
            cap,
            head: 0,
            dropped: 0,
        }
    }

    /// Append an event, evicting the oldest when a bounded ring is full.
    pub fn push(&mut self, ev: TraceEvent) {
        if self.cap == 0 || self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted so far (always 0 for unbounded rings).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Merge a window's worth of already-ordered events, accounting drops
    /// at merge time. Equivalent to pushing each event in order, but when a
    /// batch alone exceeds a bounded ring's capacity the doomed prefix is
    /// never materialised: the eviction count is computed up front, so
    /// `dropped` is exact even when whole windows arrive at once.
    pub fn absorb(&mut self, events: &mut Vec<TraceEvent>) {
        if self.cap == 0 {
            self.buf.append(events);
            return;
        }
        if events.len() >= self.cap {
            // The batch tail replaces the entire ring: everything currently
            // held plus the batch prefix is evicted.
            let evicted = self.buf.len() + events.len() - self.cap;
            self.dropped += evicted as u64;
            self.buf.clear();
            self.head = 0;
            self.buf.extend(events.drain(events.len() - self.cap..));
            events.clear();
            return;
        }
        for ev in events.drain(..) {
            self.push(ev);
        }
    }

    /// Drain the ring into a vector in recording order (oldest first).
    pub fn take_events(&mut self) -> Vec<TraceEvent> {
        let mut out = std::mem::take(&mut self.buf);
        if self.head > 0 {
            out.rotate_left(self.head);
            self.head = 0;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ns: u64) -> TraceEvent {
        TraceEvent {
            time: SimTime::ZERO + SimDuration::from_nanos(ns),
            kind: TraceKind::NodeDone { node: ns as usize },
        }
    }

    #[test]
    fn unbounded_ring_keeps_everything() {
        let mut r = TraceRing::unbounded(2);
        for i in 0..5 {
            r.push(ev(i));
        }
        assert_eq!(r.len(), 5);
        assert_eq!(r.dropped(), 0);
        let out = r.take_events();
        assert_eq!(out.len(), 5);
        assert_eq!(out[0], ev(0));
        assert_eq!(out[4], ev(4));
    }

    #[test]
    fn bounded_ring_keeps_the_tail_in_order() {
        let mut r = TraceRing::bounded(3);
        for i in 0..7 {
            r.push(ev(i));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 4);
        assert_eq!(r.take_events(), vec![ev(4), ev(5), ev(6)]);
    }

    /// `absorb` must account drops exactly like one-at-a-time pushes, for
    /// every split of the event stream into windows — including windows
    /// bigger than the ring itself.
    #[test]
    fn absorb_matches_sequential_push_accounting() {
        let total = 11u64;
        for cap in [1usize, 2, 3, 5, 16] {
            let mut serial = TraceRing::bounded(cap);
            for i in 0..total {
                serial.push(ev(i));
            }
            for split in 0..=total {
                let mut merged = TraceRing::bounded(cap);
                let mut w1: Vec<TraceEvent> = (0..split).map(ev).collect();
                let mut w2: Vec<TraceEvent> = (split..total).map(ev).collect();
                merged.absorb(&mut w1);
                merged.absorb(&mut w2);
                assert_eq!(
                    merged.dropped(),
                    serial.dropped(),
                    "cap {cap} split {split}"
                );
                assert_eq!(
                    merged.take_events(),
                    serial.clone().take_events(),
                    "cap {cap} split {split}"
                );
            }
        }
    }

    #[test]
    fn absorb_into_unbounded_ring_is_append() {
        let mut r = TraceRing::unbounded(0);
        let mut batch: Vec<TraceEvent> = (0..4).map(ev).collect();
        r.absorb(&mut batch);
        assert!(batch.is_empty());
        assert_eq!(r.dropped(), 0);
        assert_eq!(r.take_events(), (0..4).map(ev).collect::<Vec<_>>());
    }

    #[test]
    fn bounded_ring_below_capacity_is_plain() {
        let mut r = TraceRing::bounded(8);
        r.push(ev(1));
        r.push(ev(2));
        assert_eq!(r.dropped(), 0);
        assert_eq!(r.take_events(), vec![ev(1), ev(2)]);
    }
}
