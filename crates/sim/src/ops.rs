//! Node program representations.
//!
//! Two frontends drive the engine:
//!
//! * **Op programs** ([`Op`], [`OpProgram`]): a per-node vector of operations,
//!   the allocation-light path the schedulers lower to;
//! * **CMMD threads** ([`crate::cmmd`]): real closures running on OS threads
//!   against a blocking, payload-carrying API.
//!
//! Both are translated into the internal `Action` stream the engine
//! consumes, so their timing semantics are identical by construction (a
//! property the integration tests check).

use std::sync::atomic::{AtomicUsize, Ordering};

use bytes::Bytes;

use crate::error::SimError;
use crate::params::MachineParams;
use crate::time::{SimDuration, SimTime};

/// Wildcard/default message tag.
pub const ANY_TAG: u32 = 0;

/// One operation of an op-mode node program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Blocking send of `bytes` user bytes to node `to`.
    Send {
        /// Destination node.
        to: usize,
        /// User bytes.
        bytes: u64,
        /// Message tag (must match the receive).
        tag: u32,
    },
    /// Non-blocking send: posts the message and continues immediately. The
    /// transfer still rendezvouses with the matching receive (unless the
    /// machine is in eager mode); use [`Op::WaitAll`] before reusing the
    /// data. This models the asynchronous sends §3.1 of the paper wishes
    /// CMMD had.
    Isend {
        /// Destination node.
        to: usize,
        /// User bytes.
        bytes: u64,
        /// Message tag (must match the receive).
        tag: u32,
    },
    /// Block until every outstanding non-blocking send of this node has
    /// completed.
    WaitAll,
    /// Blocking receive from a specific node.
    Recv {
        /// Source node.
        from: usize,
        /// Message tag.
        tag: u32,
    },
    /// Blocking receive from whichever matching message is available first.
    RecvAny {
        /// Message tag.
        tag: u32,
    },
    /// Local computation for a fixed duration.
    Compute(SimDuration),
    /// Local memory copy of `bytes` bytes (pack/unpack), charged at the
    /// machine's memcpy rate.
    Memcpy {
        /// Bytes copied.
        bytes: u64,
    },
    /// Local floating-point work, charged at the machine's scalar flop rate.
    Flops {
        /// Floating-point operations.
        flops: u64,
    },
    /// Control-network barrier over all nodes.
    Barrier,
    /// The CMMD *system* broadcast: every node in the partition participates;
    /// `bytes` user bytes flow from `root` to everyone.
    SystemBcast {
        /// Broadcasting node.
        root: usize,
        /// User bytes broadcast.
        bytes: u64,
    },
    /// Control-network global reduction (timing only in op mode).
    Reduce,
    /// Control-network parallel-prefix (scan) operation (timing only in op
    /// mode). The CM-5 control network implements scans in hardware (§2).
    Scan,
}

/// A per-node program: the ops execute in order, each blocking until done.
pub type OpProgram = Vec<Op>;

/// Reduction operators supported by the control network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Sum of contributions.
    Sum,
    /// Maximum contribution.
    Max,
    /// Minimum contribution.
    Min,
}

/// Internal: what a node asks the engine to do next.
#[derive(Debug, Clone)]
pub(crate) enum Action {
    Send {
        to: usize,
        tag: u32,
        bytes: u64,
        payload: Option<Bytes>,
    },
    Isend {
        to: usize,
        tag: u32,
        bytes: u64,
        payload: Option<Bytes>,
    },
    /// Wait for one outstanding async send (`Some(handle)`) or all (`None`).
    WaitSend {
        handle: Option<u64>,
    },
    Recv {
        from: Option<usize>,
        tag: u32,
    },
    Compute(SimDuration),
    Barrier,
    SystemBcast {
        root: usize,
        bytes: u64,
        payload: Option<Bytes>,
    },
    Reduce {
        op: ReduceOp,
        value: f64,
    },
    Scan {
        op: ReduceOp,
        value: f64,
        inclusive: bool,
    },
    Done,
    /// Thread frontend only: the node closure panicked.
    Panic(String),
}

/// Internal: what the engine hands back when a node's blocking action
/// completes.
#[derive(Debug, Clone)]
pub(crate) struct Resume {
    /// The node's new local clock.
    pub time: SimTime,
    /// Received payload (receives and broadcasts in payload mode).
    pub payload: Option<Bytes>,
    /// Source of the received message (receives).
    pub from: Option<usize>,
    /// User bytes received.
    pub bytes: u64,
    /// Result of a reduction.
    pub reduced: Option<f64>,
    /// Handle of a just-posted non-blocking send.
    pub handle: Option<u64>,
}

impl Resume {
    /// A resume carrying nothing but a clock update.
    pub(crate) fn at(time: SimTime) -> Resume {
        Resume {
            time,
            payload: None,
            from: None,
            bytes: 0,
            reduced: None,
            handle: None,
        }
    }
}

/// Rough shape of a workload, used by the engine to pre-size its buffers.
/// Capacities only — a wrong (or default zero) hint never changes simulated
/// results, it just costs reallocations.
#[derive(Debug, Clone, Default)]
pub(crate) struct SourceShape {
    /// Total point-to-point messages the programs will send.
    pub messages: u64,
    /// Per-node count of inbound messages (empty if unknown).
    pub inbound: Vec<u64>,
    /// Per-node count of inbound messages from non-blocking sends
    /// (empty if unknown).
    pub async_inbound: Vec<u64>,
}

/// Internal: a stream of actions per node.
pub(crate) trait ProgramSource {
    /// Deliver the completion of the node's previous action and obtain its
    /// next one. For op programs this is a vector lookup; for the thread
    /// frontend it blocks until the node's real code reaches its next call.
    fn next(&mut self, node: usize, resume: Resume) -> Result<Action, SimError>;

    /// Best-effort workload shape for engine buffer pre-sizing. Sources
    /// that cannot know ahead of time (the thread frontend) use the
    /// default empty hint.
    fn shape(&self) -> SourceShape {
        SourceShape::default()
    }
}

/// Op-program adapter: walks per-node vectors, converting [`Op`] to
/// [`Action`] (resolving memcpy/flop costs against the machine parameters).
///
/// Cursors are atomics so the time-windowed parallel engine can advance
/// disjoint nodes from worker threads through a shared `&OpSource`. The
/// engine guarantees each node's cursor is only ever touched by one thread
/// at a time (a node is either staged on exactly one worker or owned by the
/// merge thread, never both), and the worker/merge phases are separated by
/// channel sends, which provide the happens-before edges — so `Relaxed`
/// ordering is sufficient and these are plain counters, not synchronization.
pub(crate) struct OpSource<'a> {
    programs: &'a [OpProgram],
    cursor: Vec<AtomicUsize>,
    params: MachineParams,
}

impl<'a> OpSource<'a> {
    pub(crate) fn new(programs: &'a [OpProgram], params: &MachineParams) -> OpSource<'a> {
        OpSource {
            programs,
            cursor: (0..programs.len()).map(|_| AtomicUsize::new(0)).collect(),
            params: params.clone(),
        }
    }

    /// [`ProgramSource::next`] through a shared reference; see the struct
    /// docs for why this is sound. The cursor deliberately does not advance
    /// past the end of the program (`Done` is idempotent), matching the
    /// serial path exactly.
    pub(crate) fn next_shared(&self, node: usize) -> Result<Action, SimError> {
        let i = self.cursor[node].load(Ordering::Relaxed);
        let Some(op) = self.programs[node].get(i) else {
            return Ok(Action::Done);
        };
        self.cursor[node].store(i + 1, Ordering::Relaxed);
        Ok(match *op {
            Op::Send { to, bytes, tag } => Action::Send {
                to,
                tag,
                bytes,
                payload: None,
            },
            Op::Isend { to, bytes, tag } => Action::Isend {
                to,
                tag,
                bytes,
                payload: None,
            },
            Op::WaitAll => Action::WaitSend { handle: None },
            Op::Recv { from, tag } => Action::Recv {
                from: Some(from),
                tag,
            },
            Op::RecvAny { tag } => Action::Recv { from: None, tag },
            Op::Compute(d) => Action::Compute(d),
            Op::Memcpy { bytes } => Action::Compute(self.params.memcpy_time(bytes)),
            Op::Flops { flops } => Action::Compute(self.params.flops_time(flops)),
            Op::Barrier => Action::Barrier,
            Op::SystemBcast { root, bytes } => Action::SystemBcast {
                root,
                bytes,
                payload: None,
            },
            Op::Reduce => Action::Reduce {
                op: ReduceOp::Sum,
                value: 0.0,
            },
            Op::Scan => Action::Scan {
                op: ReduceOp::Sum,
                value: 0.0,
                inclusive: true,
            },
        })
    }

    /// [`ProgramSource::shape`] as an inherent method, callable through the
    /// shared wrapper.
    pub(crate) fn shape_of(&self) -> SourceShape {
        let n = self.programs.len();
        let mut shape = SourceShape {
            messages: 0,
            inbound: vec![0; n],
            async_inbound: vec![0; n],
        };
        for prog in self.programs {
            for op in prog {
                match *op {
                    Op::Send { to, .. } => {
                        shape.messages += 1;
                        if to < n {
                            shape.inbound[to] += 1;
                        }
                    }
                    Op::Isend { to, .. } => {
                        shape.messages += 1;
                        if to < n {
                            shape.inbound[to] += 1;
                            shape.async_inbound[to] += 1;
                        }
                    }
                    _ => {}
                }
            }
        }
        shape
    }
}

/// A `&OpSource` that the windowed engine hands to its merge loop: the same
/// program stream, routed through [`OpSource::next_shared`] so worker
/// threads can hold the same shared reference concurrently.
pub(crate) struct SharedOpSource<'p, 'a> {
    pub(crate) inner: &'p OpSource<'a>,
}

impl ProgramSource for SharedOpSource<'_, '_> {
    fn shape(&self) -> SourceShape {
        self.inner.shape_of()
    }

    fn next(&mut self, node: usize, _resume: Resume) -> Result<Action, SimError> {
        self.inner.next_shared(node)
    }
}

impl ProgramSource for OpSource<'_> {
    fn shape(&self) -> SourceShape {
        self.shape_of()
    }

    fn next(&mut self, node: usize, _resume: Resume) -> Result<Action, SimError> {
        self.next_shared(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_cursor_matches_serial_walk_and_done_is_idempotent() {
        let params = MachineParams::cm5_1992();
        let programs = vec![vec![
            Op::Compute(SimDuration::from_micros(1)),
            Op::Send {
                to: 0,
                bytes: 8,
                tag: 1,
            },
        ]];
        let shared = OpSource::new(&programs, &params);
        assert!(matches!(shared.next_shared(0).unwrap(), Action::Compute(_)));
        assert!(matches!(
            shared.next_shared(0).unwrap(),
            Action::Send { .. }
        ));
        // Past the end: Done forever, cursor pinned (the serial source never
        // advances past the end either).
        assert!(matches!(shared.next_shared(0).unwrap(), Action::Done));
        assert!(matches!(shared.next_shared(0).unwrap(), Action::Done));
    }
}
