//! Simulator error type.

use std::fmt;

use crate::time::SimTime;

/// Errors a simulation run can produce.
#[derive(Debug, Clone)]
pub enum SimError {
    /// Machine parameters failed validation.
    InvalidParams(String),
    /// A node program issued an impossible operation (send to self, peer out
    /// of range, …).
    BadProgram {
        /// Offending node.
        node: usize,
        /// Human-readable description.
        detail: String,
    },
    /// No runnable node, no in-flight message, yet some node has not
    /// finished: the programs are mutually stuck. `waiting` describes each
    /// blocked node's outstanding operation.
    Deadlock {
        /// Virtual time at which progress stopped.
        time: SimTime,
        /// One line per blocked node.
        waiting: Vec<String>,
    },
    /// Nodes disagreed on which collective to run (e.g. one node entered a
    /// barrier while another started a system broadcast).
    CollectiveMismatch {
        /// Human-readable description.
        detail: String,
    },
    /// A node closure panicked (thread frontend only).
    NodePanic {
        /// Node whose closure panicked.
        node: usize,
        /// Panic payload, if it was a string.
        message: String,
    },
    /// A multi-tenant layout or tenant program was unusable (tenants do not
    /// fit the shared tree, a tenant program uses a machine-wide collective,
    /// a peer is outside the tenant, …).
    Tenancy {
        /// Human-readable description.
        detail: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidParams(d) => write!(f, "invalid machine parameters: {d}"),
            SimError::BadProgram { node, detail } => {
                write!(f, "bad program on node {node}: {detail}")
            }
            SimError::Deadlock { time, waiting } => {
                writeln!(f, "deadlock at t={time}; blocked nodes:")?;
                for w in waiting {
                    writeln!(f, "  {w}")?;
                }
                Ok(())
            }
            SimError::CollectiveMismatch { detail } => {
                write!(f, "collective mismatch: {detail}")
            }
            SimError::NodePanic { node, message } => {
                write!(f, "node {node} panicked: {message}")
            }
            SimError::Tenancy { detail } => write!(f, "tenancy error: {detail}"),
        }
    }
}

impl std::error::Error for SimError {}
