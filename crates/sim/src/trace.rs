//! Analysis of recorded event traces.
//!
//! With [`crate::Simulation::record_trace`] enabled, a run's
//! [`SimReport::trace`](crate::SimReport) holds every message start/finish
//! and collective completion. This module turns that stream into the
//! aggregate views the paper reasons about informally: how many transfers
//! are in flight over time, how traffic spreads across steps, and per-node
//! send/receive tallies.

use crate::stats::{TraceEvent, TraceKind};
use crate::time::{SimDuration, SimTime};

/// A step of the network-concurrency profile: `concurrent` transfers were
/// in flight from `from` until `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConcurrencySpan {
    /// Interval start.
    pub from: SimTime,
    /// Interval end.
    pub to: SimTime,
    /// Number of in-flight messages during the interval.
    pub concurrent: usize,
}

/// Aggregates derived from a trace.
#[derive(Debug, Clone)]
pub struct TraceProfile {
    /// Piecewise-constant count of in-flight messages over time.
    pub spans: Vec<ConcurrencySpan>,
    /// Maximum messages simultaneously in flight.
    pub peak_concurrency: usize,
    /// Time-weighted mean concurrency over the span of the trace.
    pub mean_concurrency: f64,
    /// Total time with at least one message in flight.
    pub busy_network_time: SimDuration,
    /// Per-node messages sent.
    pub sends_per_node: Vec<u64>,
    /// Per-node messages received.
    pub recvs_per_node: Vec<u64>,
}

/// Build the profile of a recorded trace for an `n`-node run.
///
/// ```
/// use cm5_sim::{MachineParams, Simulation, Op, ANY_TAG};
/// use cm5_sim::trace::profile;
///
/// let mut programs = vec![Vec::new(); 4];
/// for i in 1..4 {
///     programs[0].push(Op::Recv { from: i, tag: ANY_TAG });
///     programs[i].push(Op::Send { to: 0, bytes: 1000, tag: ANY_TAG });
/// }
/// let report = Simulation::new(4, MachineParams::cm5_1992())
///     .record_trace(true)
///     .run_ops(&programs)
///     .unwrap();
/// let prof = profile(&report.trace, 4);
/// // Fan-in to a single rendezvous receiver serializes: never more than
/// // one transfer at a time.
/// assert_eq!(prof.peak_concurrency, 1);
/// assert_eq!(prof.recvs_per_node[0], 3);
/// ```
pub fn profile(trace: &[TraceEvent], n: usize) -> TraceProfile {
    let mut sends_per_node = vec![0u64; n];
    let mut recvs_per_node = vec![0u64; n];
    // Build +1/-1 edges at message start/end. Node indices are bounds-
    // checked rather than trusted: a bounded trace ring may have evicted
    // events, and a caller may profile a trace with a stale `n`.
    let mut edges: Vec<(SimTime, i64)> = Vec::new();
    for ev in trace {
        match ev.kind {
            TraceKind::MsgStart { src, .. } => {
                if let Some(s) = sends_per_node.get_mut(src) {
                    *s += 1;
                }
                edges.push((ev.time, 1));
            }
            TraceKind::MsgDone { dst, .. } => {
                if let Some(r) = recvs_per_node.get_mut(dst) {
                    *r += 1;
                }
                edges.push((ev.time, -1));
            }
            _ => {}
        }
    }
    edges.sort_by_key(|&(t, delta)| (t, delta)); // ends before starts at ties
    let mut spans = Vec::new();
    let mut level: i64 = 0;
    let mut last: Option<SimTime> = None;
    let mut peak = 0usize;
    let mut weighted = 0.0f64;
    let mut busy_ns = 0u64;
    let mut total_ns = 0u64;
    for (t, delta) in edges {
        if let Some(prev) = last {
            if t > prev && level >= 0 {
                let dur = (t - prev).as_nanos();
                total_ns += dur;
                weighted += level as f64 * dur as f64;
                if level > 0 {
                    busy_ns += dur;
                }
                spans.push(ConcurrencySpan {
                    from: prev,
                    to: t,
                    concurrent: level as usize,
                });
            }
        }
        level += delta;
        peak = peak.max(level.max(0) as usize);
        last = Some(t);
    }
    TraceProfile {
        spans,
        peak_concurrency: peak,
        mean_concurrency: if total_ns > 0 {
            weighted / total_ns as f64
        } else {
            0.0
        },
        busy_network_time: SimDuration::from_nanos(busy_ns),
        sends_per_node,
        recvs_per_node,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MachineParams, Op, Simulation, ANY_TAG};

    fn traced(programs: &[Vec<Op>]) -> (TraceProfile, usize) {
        let n = programs.len();
        let report = Simulation::new(n, MachineParams::cm5_1992())
            .record_trace(true)
            .run_ops(programs)
            .unwrap();
        (profile(&report.trace, n), n)
    }

    #[test]
    fn empty_trace_is_empty_profile() {
        let prof = profile(&[], 4);
        assert_eq!(prof.peak_concurrency, 0);
        assert_eq!(prof.mean_concurrency, 0.0);
        assert!(prof.mean_concurrency.is_finite(), "no NaN on empty traces");
        assert_eq!(prof.busy_network_time, SimDuration::ZERO);
        assert!(prof.spans.is_empty());
        assert_eq!(prof.sends_per_node, vec![0; 4]);
        assert_eq!(prof.recvs_per_node, vec![0; 4]);
    }

    #[test]
    fn single_event_trace_is_well_defined() {
        // A bounded ring can leave a lone MsgStart with no matching
        // MsgDone: one edge means no interval, so every time-weighted
        // aggregate must stay zero (and finite), never NaN.
        let trace = [TraceEvent {
            time: SimTime::ZERO + SimDuration::from_micros(5),
            kind: TraceKind::MsgStart {
                src: 1,
                dst: 0,
                bytes: 64,
                tag: 0,
            },
        }];
        let prof = profile(&trace, 2);
        assert_eq!(prof.peak_concurrency, 1);
        assert_eq!(prof.mean_concurrency, 0.0);
        assert!(prof.mean_concurrency.is_finite());
        assert_eq!(prof.busy_network_time, SimDuration::ZERO);
        assert!(prof.spans.is_empty());
        assert_eq!(prof.sends_per_node, vec![0, 1]);
        assert_eq!(prof.recvs_per_node, vec![0, 0]);
    }

    #[test]
    fn out_of_range_nodes_do_not_panic() {
        // Profiling with a stale (too small) node count must not index out
        // of bounds; the event still counts toward concurrency.
        let trace = [TraceEvent {
            time: SimTime::ZERO,
            kind: TraceKind::MsgStart {
                src: 7,
                dst: 6,
                bytes: 1,
                tag: 0,
            },
        }];
        let prof = profile(&trace, 2);
        assert_eq!(prof.peak_concurrency, 1);
        assert_eq!(prof.sends_per_node, vec![0, 0]);
    }

    #[test]
    fn parallel_pairs_overlap() {
        // Two disjoint pairs exchange large messages simultaneously.
        let mut p = vec![Vec::new(); 4];
        for (a, b) in [(0usize, 1usize), (2, 3)] {
            p[a].push(Op::Recv {
                from: b,
                tag: ANY_TAG,
            });
            p[b].push(Op::Send {
                to: a,
                bytes: 50_000,
                tag: ANY_TAG,
            });
        }
        let (prof, _) = traced(&p);
        assert_eq!(prof.peak_concurrency, 2);
        assert!(prof.mean_concurrency > 1.0);
        assert_eq!(prof.sends_per_node, vec![0, 1, 0, 1]);
        assert_eq!(prof.recvs_per_node, vec![1, 0, 1, 0]);
    }

    #[test]
    fn serialized_fan_in_never_overlaps() {
        let n = 6;
        let mut p = vec![Vec::new(); n];
        for i in 1..n {
            p[0].push(Op::Recv {
                from: i,
                tag: ANY_TAG,
            });
            p[i].push(Op::Send {
                to: 0,
                bytes: 5_000,
                tag: ANY_TAG,
            });
        }
        let (prof, _) = traced(&p);
        assert_eq!(prof.peak_concurrency, 1);
        assert_eq!(prof.sends_per_node.iter().sum::<u64>(), 5);
    }

    #[test]
    fn busy_time_bounded_by_trace_span() {
        let mut p = vec![Vec::new(); 4];
        p[0].push(Op::Recv {
            from: 1,
            tag: ANY_TAG,
        });
        p[1].push(Op::Send {
            to: 0,
            bytes: 10_000,
            tag: ANY_TAG,
        });
        let (prof, _) = traced(&p);
        let span: u64 = prof.spans.iter().map(|s| (s.to - s.from).as_nanos()).sum();
        assert!(prof.busy_network_time.as_nanos() <= span);
        assert!(prof.busy_network_time.as_nanos() > 0);
    }
}
