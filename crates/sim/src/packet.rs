//! Packet-level fat-tree model — the validation reference for the
//! flow-level engine.
//!
//! The production engine models in-flight messages as fluid flows with
//! max-min fair rates ([`crate::network`]). That is an approximation of
//! what the CM-5 data network actually does: chop messages into 20-byte
//! packets, route each through the fat tree, and arbitrate contended
//! switch ports round-robin. This module implements the latter —
//! store-and-forward packets through FIFO-queued links — so tests can
//! check that the fluid approximation's completion times track the
//! packet-level truth (they agree to within a few percent on the traffic
//! classes the paper's algorithms generate; see the tests in this module
//! and in `prop_network.rs`).
//!
//! It is deliberately not the production path: packet-level simulation of
//! a 256-node complete exchange costs ~10⁶ events where the flow model
//! needs ~10³.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::params::MachineParams;
use crate::time::{SimDuration, SimTime};
use crate::topology::Topology;

/// One message to inject.
#[derive(Debug, Clone, Copy)]
pub struct PacketMessage {
    /// Sending node.
    pub src: usize,
    /// Receiving node.
    pub dst: usize,
    /// User bytes.
    pub bytes: u64,
    /// Injection start time.
    pub start: SimTime,
}

#[derive(Debug, PartialEq, Eq)]
struct Ev {
    time: SimTime,
    seq: u64,
    /// Message index.
    msg: usize,
    /// Packet index within the message.
    pkt: u64,
    /// Next stage index into the message's route (== route.len() means
    /// delivered).
    stage: usize,
}

impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Simulate `messages` at packet granularity; returns each message's
/// delivery time (arrival of its last packet at the destination, plus the
/// wire latency, mirroring the flow engine's accounting).
pub fn simulate_packets(
    topo: &Topology,
    params: &MachineParams,
    messages: &[PacketMessage],
) -> Vec<SimTime> {
    let mut events: BinaryHeap<Reverse<Ev>> = BinaryHeap::new();
    let mut seq = 0u64;
    // Per-link FIFO occupancy: the time the link next becomes free.
    let mut busy_until: Vec<SimTime> = vec![SimTime::ZERO; topo.link_count()];
    // Per-link transmission time of one wire packet.
    let tx_time: Vec<SimDuration> = topo
        .link_capacities(params)
        .into_iter()
        .map(|cap| SimDuration::from_rate(params.packet_wire as f64, cap))
        .collect();
    let route_table = crate::topology::RouteTable::shared(topo);
    let routes: Vec<&[usize]> = messages
        .iter()
        .map(|m| route_table.route(m.src, m.dst))
        .collect();
    // Injection: the sender's software layer emits packets no faster than
    // the flow cap.
    let inject_gap = SimDuration::from_rate(params.packet_wire as f64, params.flow_cap());
    let mut delivered: Vec<SimTime> = vec![SimTime::ZERO; messages.len()];
    let mut remaining: Vec<u64> = Vec::with_capacity(messages.len());
    for (mi, m) in messages.iter().enumerate() {
        let packets = params.packets(m.bytes);
        remaining.push(packets);
        for p in 0..packets {
            let mut at = m.start;
            for _ in 0..p {
                at += inject_gap;
            }
            events.push(Reverse(Ev {
                time: at,
                seq,
                msg: mi,
                pkt: p,
                stage: 0,
            }));
            seq += 1;
        }
    }
    while let Some(Reverse(ev)) = events.pop() {
        let route = &routes[ev.msg];
        if ev.stage == route.len() {
            // Delivered.
            remaining[ev.msg] -= 1;
            if remaining[ev.msg] == 0 {
                delivered[ev.msg] = ev.time + params.wire_latency;
            }
            continue;
        }
        let link = route[ev.stage];
        let start = ev.time.max(busy_until[link]);
        let done = start + tx_time[link];
        busy_until[link] = done;
        events.push(Reverse(Ev {
            time: done,
            seq,
            msg: ev.msg,
            pkt: ev.pkt,
            stage: ev.stage + 1,
        }));
        seq += 1;
    }
    delivered
}

/// Convenience: the flow-level engine's prediction for the same messages
/// (all starting at their given times), for side-by-side comparison.
pub fn simulate_flows(
    topo: &Topology,
    params: &MachineParams,
    messages: &[PacketMessage],
) -> Vec<SimTime> {
    use crate::network::Network;
    let mut net = Network::new_on(topo.clone(), params);
    let mut starts: Vec<(SimTime, usize)> = messages
        .iter()
        .enumerate()
        .map(|(i, m)| (m.start, i))
        .collect();
    starts.sort_unstable();
    let mut delivered = vec![SimTime::ZERO; messages.len()];
    let mut pending = starts.into_iter().peekable();
    let mut active = 0usize;
    loop {
        // Next interesting instant: a start or a completion.
        let next_start = pending.peek().map(|&(t, _)| t);
        let next_done = net.next_completion();
        match (next_start, next_done) {
            (None, None) => break,
            (Some(ts), Some(td)) if td <= ts => {
                net.advance_to(td);
                for flow in net.take_completed() {
                    delivered[flow.token as usize] = td + params.wire_latency;
                    active -= 1;
                }
            }
            (Some(ts), _) => {
                net.advance_to(ts);
                while let Some(&(t, i)) = pending.peek() {
                    if t > ts {
                        break;
                    }
                    let m = messages[i];
                    net.add_flow(
                        m.src,
                        m.dst,
                        params.wire_bytes(m.bytes),
                        params.flow_cap(),
                        i as u64,
                    );
                    active += 1;
                    pending.next();
                }
            }
            (None, Some(td)) => {
                net.advance_to(td);
                for flow in net.take_completed() {
                    delivered[flow.token as usize] = td + params.wire_latency;
                    active -= 1;
                }
            }
        }
    }
    debug_assert_eq!(active, 0);
    delivered
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> MachineParams {
        MachineParams::cm5_1992()
    }

    fn msg(src: usize, dst: usize, bytes: u64, start_us: u64) -> PacketMessage {
        PacketMessage {
            src,
            dst,
            bytes,
            start: SimTime::ZERO + SimDuration::from_micros(start_us),
        }
    }

    /// Relative disagreement between the two models.
    fn rel_err(a: SimTime, b: SimTime) -> f64 {
        let (a, b) = (a.as_nanos() as f64, b.as_nanos() as f64);
        (a - b).abs() / a.max(b).max(1.0)
    }

    #[test]
    fn single_local_message_matches_flow_model() {
        let tree = Topology::FatTree(crate::topology::FatTree::new(8));
        let msgs = vec![msg(0, 1, 4096, 0)];
        let pk = simulate_packets(&tree, &p(), &msgs);
        let fl = simulate_flows(&tree, &p(), &msgs);
        // Injection-limited at the 10 MB/s software cap in both models;
        // the packet model adds one store-and-forward pipeline fill.
        assert!(
            rel_err(pk[0], fl[0]) < 0.05,
            "packet {} vs flow {}",
            pk[0],
            fl[0]
        );
    }

    #[test]
    fn single_root_crossing_matches() {
        let tree = Topology::FatTree(crate::topology::FatTree::new(32));
        let msgs = vec![msg(0, 31, 8192, 0)];
        let pk = simulate_packets(&tree, &p(), &msgs);
        let fl = simulate_flows(&tree, &p(), &msgs);
        assert!(
            rel_err(pk[0], fl[0]) < 0.05,
            "packet {} vs flow {}",
            pk[0],
            fl[0]
        );
    }

    /// The saturation case behind PEX's all-global steps: all 16 left-half
    /// nodes send across the root at once. The flow model says 5 MB/s per
    /// flow; the packet model's FIFO arbitration must agree on the *last*
    /// completion to within a few percent.
    #[test]
    fn saturated_root_crossing_agrees_on_makespan() {
        let tree = Topology::FatTree(crate::topology::FatTree::new(32));
        let msgs: Vec<PacketMessage> = (0..16).map(|i| msg(i, 16 + i, 2048, 0)).collect();
        let pk = simulate_packets(&tree, &p(), &msgs);
        let fl = simulate_flows(&tree, &p(), &msgs);
        let pk_last = pk.iter().max().unwrap();
        let fl_last = fl.iter().max().unwrap();
        assert!(
            rel_err(*pk_last, *fl_last) < 0.10,
            "packet {} vs flow {}",
            pk_last,
            fl_last
        );
    }

    /// Mixed local + remote traffic (the BEX regime): per-message times may
    /// reorder slightly, but totals track.
    #[test]
    fn mixed_traffic_tracks_within_tolerance() {
        let tree = Topology::FatTree(crate::topology::FatTree::new(32));
        let mut msgs = Vec::new();
        // 4 root crossers + 6 local pairs, staggered starts.
        for i in 0..4 {
            msgs.push(msg(i, 16 + i, 1024, 10 * i as u64));
        }
        for i in 0..6 {
            msgs.push(msg(4 + i, (4 + i) ^ 1, 1024, 5 * i as u64));
        }
        let pk = simulate_packets(&tree, &p(), &msgs);
        let fl = simulate_flows(&tree, &p(), &msgs);
        let pk_sum: u64 = pk.iter().map(|t| t.as_nanos()).sum();
        let fl_sum: u64 = fl.iter().map(|t| t.as_nanos()).sum();
        let err = (pk_sum as f64 - fl_sum as f64).abs() / pk_sum.max(fl_sum) as f64;
        assert!(err < 0.15, "aggregate disagreement {err:.3}");
    }

    #[test]
    fn packet_model_is_deterministic() {
        let tree = Topology::FatTree(crate::topology::FatTree::new(16));
        let msgs: Vec<PacketMessage> = (0..8).map(|i| msg(i, 15 - i, 700, i as u64)).collect();
        let a = simulate_packets(&tree, &p(), &msgs);
        let b = simulate_packets(&tree, &p(), &msgs);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_byte_message_is_one_packet() {
        let tree = Topology::FatTree(crate::topology::FatTree::new(8));
        let pk = simulate_packets(&tree, &p(), &[msg(0, 4, 0, 0)]);
        // One 20-byte packet through 4 links + wire latency: microseconds.
        assert!(pk[0].as_micros_f64() < 25.0);
        assert!(pk[0].as_micros_f64() >= 8.0);
    }
}
