//! Multi-tenant partitions sharing one fat tree.
//!
//! The paper measures a dedicated machine: one job owns the whole
//! partition, so root bandwidth is never shared. A scheduling *service*
//! faces the opposite regime — several tenants' jobs run concurrently on
//! one physical tree and contend for the thinned upper levels. This module
//! maps each tenant's private node space onto a shared [`FatTree`] and runs
//! all tenants in one simulation so the flow solver arbitrates the shared
//! links:
//!
//! * [`Placement::Subtree`] packs each tenant into a contiguous block
//!   aligned to a power-of-[`ARITY`] boundary. A tenant whose size *is* a
//!   power of the arity then owns complete groups at every level it can
//!   reach, its link set is disjoint from every other tenant's, and its
//!   results are bit-identical to a standalone run on its own tree — the
//!   CM-5's space-partitioning guarantee, reproduced.
//! * [`Placement::Striped`] deals each tenant's nodes round-robin across
//!   the top-level groups, so even tenant-internal traffic crosses the
//!   root. This is the anti-pattern the paper's dedicated-partition model
//!   never sees: tenants measurably slow each other.
//!
//! Tenant programs are plain point-to-point op vectors (what cm5-core's
//! `lower()` emits by default). Peer ids are tenant-local and are
//! remapped to global ids; tags are namespaced per tenant so a wildcard
//! receive can never match another tenant's message even in principle.
//! Machine-wide collectives (`Barrier`, `SystemBcast`, `Reduce`, `Scan`)
//! would synchronize *across* tenants on the shared control network, so
//! they are rejected with [`SimError::Tenancy`].

use crate::engine::Simulation;
use crate::error::SimError;
use crate::ops::{Op, OpProgram, ANY_TAG};
use crate::params::MachineParams;
use crate::stats::SimReport;
use crate::time::{SimDuration, SimTime};
use crate::topology::{FatTree, Topology, ARITY};

/// How tenant node spaces are laid out on the shared tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Contiguous blocks aligned to power-of-arity boundaries: disjoint
    /// link sets, no cross-tenant contention.
    Subtree,
    /// Round-robin across top-level groups: tenant-internal traffic
    /// crosses the root, tenants contend for root bandwidth.
    Striped,
}

impl Placement {
    /// Parse a placement name (`subtree` | `striped`).
    pub fn parse(s: &str) -> Option<Placement> {
        match s {
            "subtree" => Some(Placement::Subtree),
            "striped" => Some(Placement::Striped),
            _ => None,
        }
    }

    /// The name [`Placement::parse`] accepts.
    pub fn name(&self) -> &'static str {
        match self {
            Placement::Subtree => "subtree",
            Placement::Striped => "striped",
        }
    }
}

/// One tenant: a name and a per-node op program over the tenant's private
/// node space `0..programs.len()`.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Display name (tenant id in reports).
    pub name: String,
    /// Per-node programs; peer ids are tenant-local.
    pub programs: Vec<OpProgram>,
}

/// A computed mapping of tenant-local node ids onto the shared tree.
#[derive(Debug, Clone)]
pub struct TenantLayout {
    shared_n: usize,
    placement: Placement,
    /// `maps[t][local]` = global node id.
    maps: Vec<Vec<usize>>,
}

/// Smallest power of [`ARITY`] that is `>= size`.
fn arity_block(size: usize) -> usize {
    let mut b = 1usize;
    while b < size {
        b = b.saturating_mul(ARITY);
    }
    b
}

impl TenantLayout {
    /// Lay out tenants of the given sizes on a shared tree of `shared_n`
    /// nodes. Fails with [`SimError::Tenancy`] when the tenants do not fit.
    pub fn new(
        shared_n: usize,
        sizes: &[usize],
        placement: Placement,
    ) -> Result<TenantLayout, SimError> {
        if shared_n < 2 {
            return Err(SimError::Tenancy {
                detail: format!("shared tree needs at least 2 nodes, got {shared_n}"),
            });
        }
        if sizes.is_empty() {
            return Err(SimError::Tenancy {
                detail: "no tenants".into(),
            });
        }
        for (t, &size) in sizes.iter().enumerate() {
            if size < 2 {
                return Err(SimError::Tenancy {
                    detail: format!("tenant {t} needs at least 2 nodes, got {size}"),
                });
            }
        }
        let maps = match placement {
            Placement::Subtree => {
                let mut maps = Vec::with_capacity(sizes.len());
                let mut cursor = 0usize;
                for (t, &size) in sizes.iter().enumerate() {
                    let block = arity_block(size);
                    // Align the block start so the tenant owns complete
                    // groups at every level up to its own height.
                    cursor = cursor.div_ceil(block) * block;
                    if cursor + size > shared_n {
                        return Err(SimError::Tenancy {
                            detail: format!(
                                "tenant {t} ({size} nodes, {block}-aligned) does not fit: \
                                 needs nodes {cursor}..{} of {shared_n}",
                                cursor + size
                            ),
                        });
                    }
                    maps.push((cursor..cursor + size).collect());
                    cursor += block;
                }
                maps
            }
            Placement::Striped => {
                let tree = FatTree::new(shared_n);
                let span = ARITY.pow(tree.levels() - 1);
                let groups = shared_n.div_ceil(span);
                if groups < 2 {
                    return Err(SimError::Tenancy {
                        detail: format!(
                            "striped placement needs at least 2 top-level groups, \
                             a {shared_n}-node tree has {groups}"
                        ),
                    });
                }
                // One shared fill cursor per top-level group; each tenant's
                // nodes are dealt round-robin so consecutive tenant-local
                // ids land in different groups.
                let mut fill = vec![0usize; groups];
                let mut maps = Vec::with_capacity(sizes.len());
                for (t, &size) in sizes.iter().enumerate() {
                    let mut map = Vec::with_capacity(size);
                    for local in 0..size {
                        let g = local % groups;
                        let global = g * span + fill[g];
                        if fill[g] >= span || global >= shared_n {
                            return Err(SimError::Tenancy {
                                detail: format!(
                                    "tenant {t} node {local}: top-level group {g} is full"
                                ),
                            });
                        }
                        fill[g] += 1;
                        map.push(global);
                    }
                    maps.push(map);
                }
                maps
            }
        };
        Ok(TenantLayout {
            shared_n,
            placement,
            maps,
        })
    }

    /// Number of nodes in the shared tree.
    pub fn shared_nodes(&self) -> usize {
        self.shared_n
    }

    /// Number of tenants.
    pub fn tenant_count(&self) -> usize {
        self.maps.len()
    }

    /// The placement policy this layout was built with.
    pub fn placement(&self) -> Placement {
        self.placement
    }

    /// Global node id of tenant `t`'s local node `local`.
    pub fn global_id(&self, t: usize, local: usize) -> usize {
        self.maps[t][local]
    }

    /// Global node ids of tenant `t`, in tenant-local order.
    pub fn nodes_of(&self, t: usize) -> &[usize] {
        &self.maps[t]
    }

    /// Namespace a tenant's message tag so it can never collide with
    /// another tenant's. The wildcard tag stays wildcard (harmless: sends
    /// are remapped in-tenant, so no foreign message can reach a tenant
    /// node in the first place).
    fn remap_tag(&self, t: usize, tag: u32) -> Result<u32, SimError> {
        if tag == ANY_TAG {
            return Ok(ANY_TAG);
        }
        let tenants = self.maps.len() as u32;
        tag.checked_mul(tenants)
            .and_then(|x| x.checked_add(t as u32 + 1))
            .ok_or_else(|| SimError::Tenancy {
                detail: format!("tenant {t}: tag {tag} overflows the tenant namespace"),
            })
    }

    /// Merge per-tenant programs into one program vector over the shared
    /// tree: peer ids remapped tenant-local → global, tags namespaced,
    /// machine-wide collectives rejected. Nodes no tenant owns get empty
    /// programs (they finish instantly at time zero).
    pub fn merge_programs(&self, tenants: &[TenantSpec]) -> Result<Vec<OpProgram>, SimError> {
        if tenants.len() != self.maps.len() {
            return Err(SimError::Tenancy {
                detail: format!(
                    "layout has {} tenants, got {} program sets",
                    self.maps.len(),
                    tenants.len()
                ),
            });
        }
        let mut merged: Vec<OpProgram> = vec![Vec::new(); self.shared_n];
        for (t, spec) in tenants.iter().enumerate() {
            let map = &self.maps[t];
            if spec.programs.len() != map.len() {
                return Err(SimError::Tenancy {
                    detail: format!(
                        "tenant {t} ({}): layout has {} nodes, programs cover {}",
                        spec.name,
                        map.len(),
                        spec.programs.len()
                    ),
                });
            }
            let peer = |local: usize, at: usize| -> Result<usize, SimError> {
                map.get(local).copied().ok_or_else(|| SimError::Tenancy {
                    detail: format!(
                        "tenant {t} ({}) node {at}: peer {local} outside the tenant \
                         (size {})",
                        spec.name,
                        map.len()
                    ),
                })
            };
            for (local, prog) in spec.programs.iter().enumerate() {
                let out = &mut merged[map[local]];
                out.reserve(prog.len());
                for op in prog {
                    out.push(match *op {
                        Op::Send { to, bytes, tag } => Op::Send {
                            to: peer(to, local)?,
                            bytes,
                            tag: self.remap_tag(t, tag)?,
                        },
                        Op::Isend { to, bytes, tag } => Op::Isend {
                            to: peer(to, local)?,
                            bytes,
                            tag: self.remap_tag(t, tag)?,
                        },
                        Op::Recv { from, tag } => Op::Recv {
                            from: peer(from, local)?,
                            tag: self.remap_tag(t, tag)?,
                        },
                        Op::RecvAny { tag } => Op::RecvAny {
                            tag: self.remap_tag(t, tag)?,
                        },
                        Op::WaitAll => Op::WaitAll,
                        Op::Compute(d) => Op::Compute(d),
                        Op::Memcpy { bytes } => Op::Memcpy { bytes },
                        Op::Flops { flops } => Op::Flops { flops },
                        Op::Barrier | Op::SystemBcast { .. } | Op::Reduce | Op::Scan => {
                            return Err(SimError::Tenancy {
                                detail: format!(
                                    "tenant {t} ({}) node {local}: machine-wide collective \
                                     {op:?} is not allowed in a shared partition",
                                    spec.name
                                ),
                            });
                        }
                    });
                }
            }
        }
        Ok(merged)
    }
}

/// Per-tenant accounting carved out of the shared run.
#[derive(Debug, Clone)]
pub struct TenantSlice {
    /// Tenant name.
    pub name: String,
    /// Global node ids, tenant-local order.
    pub nodes: Vec<usize>,
    /// Completion time of the tenant's slowest node.
    pub makespan: SimDuration,
    /// Messages sent by the tenant's nodes.
    pub messages: u64,
    /// User bytes sent by the tenant's nodes.
    pub payload_bytes: u64,
}

/// Result of a multi-tenant run: the shared-tree report plus one slice per
/// tenant.
#[derive(Debug, Clone)]
pub struct TenantReport {
    /// The whole-machine report (makespan covers all tenants).
    pub report: SimReport,
    /// Per-tenant slices, in input order.
    pub tenants: Vec<TenantSlice>,
}

/// Run `tenants` concurrently on one shared `shared_n`-node fat tree.
///
/// Builds a [`TenantLayout`] from the tenant program sizes, merges the
/// programs, runs a single [`Simulation`], and slices the report per
/// tenant. Determinism carries over from the engine: the result is a pure
/// function of `(tenants, shared_n, placement, params)`.
pub fn run_tenants(
    shared_n: usize,
    placement: Placement,
    tenants: &[TenantSpec],
    params: &MachineParams,
) -> Result<TenantReport, SimError> {
    run_tenants_jobs(shared_n, placement, tenants, params, 1)
}

/// [`run_tenants`] with `sim_jobs` speculation workers inside the one
/// shared simulation (see [`Simulation::sim_jobs`]); results are
/// bit-identical at any worker count.
pub fn run_tenants_jobs(
    shared_n: usize,
    placement: Placement,
    tenants: &[TenantSpec],
    params: &MachineParams,
    sim_jobs: usize,
) -> Result<TenantReport, SimError> {
    let sizes: Vec<usize> = tenants.iter().map(|t| t.programs.len()).collect();
    let layout = TenantLayout::new(shared_n, &sizes, placement)?;
    let merged = layout.merge_programs(tenants)?;
    let sim = Simulation::new_on(Topology::FatTree(FatTree::new(shared_n)), params.clone())
        .sim_jobs(sim_jobs);
    let report = sim.run_ops(&merged)?;
    let slices = tenants
        .iter()
        .enumerate()
        .map(|(t, spec)| {
            let nodes = layout.nodes_of(t).to_vec();
            let mut makespan = SimDuration::ZERO;
            let mut messages = 0u64;
            let mut payload = 0u64;
            for &g in &nodes {
                let n = &report.nodes[g];
                makespan = makespan.max(n.finished_at.since(SimTime::ZERO));
                messages += n.msgs_sent;
                payload += n.payload_sent;
            }
            TenantSlice {
                name: spec.name.clone(),
                nodes,
                makespan,
                messages,
                payload_bytes: payload,
            }
        })
        .collect();
    Ok(TenantReport {
        report,
        tenants: slices,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Everybody sends `bytes` to the next tenant-local node (a ring).
    fn ring(n: usize, bytes: u64) -> Vec<OpProgram> {
        (0..n)
            .map(|i| {
                vec![
                    Op::Isend {
                        to: (i + 1) % n,
                        bytes,
                        tag: 7,
                    },
                    Op::Recv {
                        from: (i + n - 1) % n,
                        tag: 7,
                    },
                    Op::WaitAll,
                ]
            })
            .collect()
    }

    fn spec(name: &str, programs: Vec<OpProgram>) -> TenantSpec {
        TenantSpec {
            name: name.into(),
            programs,
        }
    }

    #[test]
    fn subtree_blocks_are_aligned_and_disjoint() {
        let layout = TenantLayout::new(64, &[4, 16, 4], Placement::Subtree).unwrap();
        assert_eq!(layout.nodes_of(0), &[0, 1, 2, 3]);
        // 16-block alignment skips nodes 4..16.
        assert_eq!(layout.global_id(1, 0), 16);
        assert_eq!(layout.global_id(1, 15), 31);
        assert_eq!(layout.nodes_of(2), &[32, 33, 34, 35]);
    }

    #[test]
    fn striped_nodes_spread_over_top_groups() {
        // 64 nodes: 4 top-level groups of span 16.
        let layout = TenantLayout::new(64, &[8], Placement::Striped).unwrap();
        assert_eq!(
            layout.nodes_of(0),
            &[0, 16, 32, 48, 1, 17, 33, 49],
            "consecutive locals land in different top-level groups"
        );
        let tree = FatTree::new(64);
        assert!(tree.crosses_root(layout.global_id(0, 0), layout.global_id(0, 1)));
    }

    #[test]
    fn overfull_layouts_are_rejected() {
        assert!(matches!(
            TenantLayout::new(16, &[16, 4], Placement::Subtree),
            Err(SimError::Tenancy { .. })
        ));
        assert!(matches!(
            TenantLayout::new(8, &[9], Placement::Striped),
            Err(SimError::Tenancy { .. })
        ));
    }

    #[test]
    fn collectives_are_rejected() {
        let mut programs = ring(4, 64);
        programs[0].push(Op::Barrier);
        let err = run_tenants(
            16,
            Placement::Subtree,
            &[spec("a", programs)],
            &MachineParams::cm5_1992(),
        )
        .unwrap_err();
        assert!(matches!(err, SimError::Tenancy { .. }), "{err}");
    }

    #[test]
    fn out_of_tenant_peers_are_rejected() {
        let mut programs = ring(4, 64);
        programs[1].push(Op::Send {
            to: 12, // outside the 4-node tenant
            bytes: 1,
            tag: 1,
        });
        let err = run_tenants(
            64,
            Placement::Subtree,
            &[spec("a", programs)],
            &MachineParams::cm5_1992(),
        )
        .unwrap_err();
        assert!(matches!(err, SimError::Tenancy { .. }), "{err}");
    }

    #[test]
    fn striped_tenants_are_jobs_invariant() {
        let tenants = [spec("a", ring(16, 1024)), spec("b", ring(16, 512))];
        let serial =
            run_tenants(64, Placement::Striped, &tenants, &MachineParams::cm5_1992()).unwrap();
        for jobs in [2usize, 4] {
            let par = run_tenants_jobs(
                64,
                Placement::Striped,
                &tenants,
                &MachineParams::cm5_1992(),
                jobs,
            )
            .unwrap();
            assert_eq!(serial.report.makespan, par.report.makespan);
            assert_eq!(serial.report.wire_bytes, par.report.wire_bytes);
            for (a, b) in serial.tenants.iter().zip(&par.tenants) {
                assert_eq!(a.makespan, b.makespan);
                assert_eq!(a.messages, b.messages);
                assert_eq!(a.payload_bytes, b.payload_bytes);
            }
        }
    }

    #[test]
    fn two_tenants_run_and_slice() {
        let report = run_tenants(
            64,
            Placement::Subtree,
            &[spec("a", ring(16, 1024)), spec("b", ring(16, 1024))],
            &MachineParams::cm5_1992(),
        )
        .unwrap();
        assert_eq!(report.tenants.len(), 2);
        assert_eq!(report.tenants[0].messages, 16);
        assert_eq!(report.tenants[1].messages, 16);
        // Identical programs on disjoint, congruent subtrees: identical
        // per-tenant makespans, equal to the machine makespan.
        assert_eq!(report.tenants[0].makespan, report.tenants[1].makespan);
        assert_eq!(report.report.makespan, report.tenants[0].makespan);
    }
}
