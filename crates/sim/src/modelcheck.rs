//! Exhaustive interleaving checker for the windowed engine's shared
//! cursor protocol.
//!
//! The parallel engine's workers pull node actions through
//! [`OpSource::next_shared`](crate::ops): a relaxed load of the node's
//! `AtomicUsize` cursor, a read of the op at that index, and a relaxed
//! store of `index + 1`. That is only sound because the window planner
//! gives each worker *disjoint* node sets — two workers servicing the same
//! node could interleave load/store and duplicate or skip ops, corrupting
//! the merge order.
//!
//! This module proves the protocol's determinism the loom way, without the
//! dependency: the cursor protocol is modelled as an explicit-state
//! transition system at atomic-operation granularity (the load and the
//! store are separate transitions, so every racy interleaving is
//! reachable), and a memoised DFS enumerates **every** schedule of a
//! 2-worker × small-program model. Each terminal state's emitted actions
//! are merged exactly like the engine merges window results (ordered by
//! node, then program index); the checker asserts all interleavings
//! produce one identical merged sequence.
//!
//! Two configurations matter:
//!
//! * [`check_cursor_protocol`] — disjoint ownership, the invariant the
//!   engine maintains. The checker must report **zero** divergences; CI
//!   gates on this.
//! * [`check_racy_shared_node`] — both workers own node 0, the bug the
//!   planner prevents. The checker must *find* a divergence; this is the
//!   fixture proving the checker actually detects interleaving bugs
//!   rather than vacuously passing.

use std::collections::HashSet;

/// One emitted action: `(node, program index)`.
pub type Emitted = (usize, usize);

/// What one worker is doing, at atomic-step granularity.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Phase {
    /// Between protocol steps: free to pick any owned node.
    Idle,
    /// Performed the cursor load for `node`, saw `reg`; the store (or the
    /// Done observation) has not happened yet.
    Loaded {
        /// The node being serviced.
        node: usize,
        /// The cursor value the load returned.
        reg: usize,
    },
}

/// Full model state: shared cursors plus each worker's private state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct State {
    /// The shared per-node `AtomicUsize` cursors.
    cursors: Vec<usize>,
    /// Per-worker phase (the "registers" between atomic steps).
    phase: Vec<Phase>,
    /// Per-worker, per-owned-slot: has this worker observed Done there?
    exhausted: Vec<Vec<bool>>,
    /// Per-worker log of emitted actions, in emission order.
    emitted: Vec<Vec<Emitted>>,
}

/// Result of an exhaustive enumeration.
#[derive(Debug, Clone)]
pub struct ModelResult {
    /// Distinct states visited (including non-terminal ones).
    pub states: usize,
    /// Terminal states reached.
    pub terminals: usize,
    /// Distinct merged outcome sequences across all terminal states.
    pub outcomes: usize,
    /// The canonical merged sequence (from the first terminal reached).
    pub merged: Vec<Emitted>,
    /// A second, different merged sequence if any interleaving diverged.
    pub divergence: Option<Vec<Emitted>>,
}

impl ModelResult {
    /// Whether every interleaving produced the same merged sequence.
    pub fn deterministic(&self) -> bool {
        self.divergence.is_none()
    }
}

/// The engine's merge rule on a terminal state: gather every worker's
/// emissions and order by `(node, program index)` — the windowed engine's
/// deterministic tiebreak.
fn merge(state: &State) -> Vec<Emitted> {
    let mut all: Vec<Emitted> = state.emitted.iter().flatten().copied().collect();
    all.sort_unstable();
    all
}

/// Exhaustively enumerate every interleaving of the cursor protocol for
/// the given ownership map. `owned[w]` lists the nodes worker `w`
/// services; every listed node runs a straight-line program of
/// `ops_per_node` ops. Panics if `ops_per_node` is 0.
pub fn check(owned: &[Vec<usize>], num_nodes: usize, ops_per_node: usize) -> ModelResult {
    assert!(ops_per_node > 0, "model needs at least one op per node");
    let workers = owned.len();
    let init = State {
        cursors: vec![0; num_nodes],
        phase: vec![Phase::Idle; workers],
        exhausted: owned.iter().map(|o| vec![false; o.len()]).collect(),
        emitted: vec![Vec::new(); workers],
    };
    let mut visited: HashSet<State> = HashSet::new();
    let mut outcomes: HashSet<Vec<Emitted>> = HashSet::new();
    let mut stack = vec![init.clone()];
    visited.insert(init);
    let mut terminals = 0usize;
    let mut first: Option<Vec<Emitted>> = None;
    let mut divergence = None;
    while let Some(state) = stack.pop() {
        let mut terminal = true;
        for (w, phase) in state.phase.iter().enumerate() {
            match *phase {
                Phase::Idle => {
                    for (slot, &node) in owned[w].iter().enumerate() {
                        if state.exhausted[w][slot] {
                            continue;
                        }
                        terminal = false;
                        // Atomic step 1: the relaxed cursor load.
                        let mut next = state.clone();
                        next.phase[w] = Phase::Loaded {
                            node,
                            reg: state.cursors[node],
                        };
                        if visited.insert(next.clone()) {
                            stack.push(next);
                        }
                    }
                }
                Phase::Loaded { node, reg } => {
                    terminal = false;
                    // Atomic step 2: the relaxed store (or Done, which
                    // leaves the cursor untouched, matching next_shared).
                    let mut next = state.clone();
                    if reg < ops_per_node {
                        next.cursors[node] = reg + 1;
                        next.emitted[w].push((node, reg));
                    } else {
                        let slot = owned[w]
                            .iter()
                            .position(|&n| n == node)
                            .expect("loaded an owned node");
                        next.exhausted[w][slot] = true;
                    }
                    next.phase[w] = Phase::Idle;
                    if visited.insert(next.clone()) {
                        stack.push(next);
                    }
                }
            }
        }
        if terminal {
            terminals += 1;
            let m = merge(&state);
            if outcomes.insert(m.clone()) {
                match &first {
                    None => first = Some(m),
                    Some(_) if divergence.is_none() => divergence = Some(m),
                    Some(_) => {}
                }
            }
        }
    }
    ModelResult {
        states: visited.len(),
        terminals,
        outcomes: outcomes.len(),
        merged: first.unwrap_or_default(),
        divergence,
    }
}

/// The engine's actual configuration: 2 workers with disjoint node sets
/// (worker 0 owns nodes 0..n/2, worker 1 the rest, over 4 nodes). Proves
/// merge-order determinism across **all** interleavings.
pub fn check_cursor_protocol(ops_per_node: usize) -> ModelResult {
    check(&[vec![0, 1], vec![2, 3]], 4, ops_per_node)
}

/// The forbidden configuration: both workers service node 0. The checker
/// must report a divergence here — the fixture that proves it can catch
/// interleaving bugs.
pub fn check_racy_shared_node(ops_per_node: usize) -> ModelResult {
    check(&[vec![0], vec![0]], 1, ops_per_node)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_ownership_is_deterministic() {
        let r = check_cursor_protocol(3);
        assert!(r.deterministic(), "divergence: {:?}", r.divergence);
        assert_eq!(r.outcomes, 1);
        // Every node's full program appears exactly once, in order.
        let want: Vec<Emitted> = (0..4).flat_map(|n| (0..3).map(move |i| (n, i))).collect();
        assert_eq!(r.merged, want);
        assert!(r.states > 100, "exhaustiveness sanity: {} states", r.states);
        assert!(r.terminals >= 1);
    }

    #[test]
    fn racy_shared_node_is_caught() {
        let r = check_racy_shared_node(2);
        assert!(
            !r.deterministic(),
            "the checker failed to detect the load/store race"
        );
        assert!(r.outcomes > 1);
    }

    #[test]
    fn single_worker_is_trivially_deterministic() {
        let r = check(&[vec![0, 1]], 2, 3);
        assert!(r.deterministic());
        assert_eq!(r.merged.len(), 6);
    }

    /// The racy model's divergent outcome is a *merge* difference, not
    /// just a different emission order: duplicated or skipped ops.
    #[test]
    fn racy_divergence_duplicates_or_skips_ops() {
        let r = check_racy_shared_node(2);
        let a = &r.merged;
        let b = r.divergence.as_ref().unwrap();
        assert_ne!(a, b);
        // At least one of the outcomes is not the clean [ (0,0), (0,1) ].
        let clean: Vec<Emitted> = vec![(0, 0), (0, 1)];
        assert!(a != &clean || b != &clean);
    }
}
