//! The discrete-event engine.
//!
//! Each simulated node owns a local virtual clock and executes its program
//! one blocking action at a time. Communication follows the CMMD synchronous
//! model the paper is built around: by default a send *rendezvouses* with
//! the matching receive — no bytes move until both sides have posted, and
//! the sender stays blocked until the transfer completes. Messages in flight
//! are flows in the [`crate::network`] model, so transfer times respond to
//! fat-tree contention.
//!
//! Event ordering is total — `(time, insertion sequence)` — and every data
//! structure iterates deterministically, so a run is a pure function of the
//! programs and [`MachineParams`].
//!
//! # Intra-run parallelism
//!
//! [`Simulation::sim_jobs`] turns on a conservative time-window parallel
//! mode for op programs. The observation making it safe is *not* the
//! classic PDES lookahead argument — it is stronger. A node whose resume
//! slot is filled is unblocked: nothing but its own `Advance` event can
//! touch its op cursor or clock until it next blocks. Its action stream is
//! a static vector walk, so a worker thread can *speculate* it forward —
//! accumulating compute time, posting overheads, and queued isends — and
//! the result is exactly what the serial engine would compute, regardless
//! of anything other nodes do. The merge thread then replays each
//! speculated run at the node's `Advance` pop, in the engine's canonical
//! `(time, seq)` order, against the shared network. Every network
//! mutation, trace event, handle allocation, and event-sequence number is
//! therefore issued in exactly the serial order: the report is
//! bit-identical at any worker count, with every rate solver, send mode,
//! and program shape. The window width (default: the 88 µs minimum
//! message latency, [`MachineParams::min_message_latency`]) only controls
//! how much speculation is batched per staging round — it is a
//! performance knob, never a correctness knob.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::time::Instant;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::error::SimError;
use crate::network::{Flow, Network};
use crate::ops::{Action, OpProgram, OpSource, ProgramSource, ReduceOp, Resume, SharedOpSource};
use crate::params::{MachineParams, RateSolver, SendMode};
use crate::stats::{NodeReport, SimPerf, SimReport, TraceEvent, TraceKind, TraceRing};
use crate::time::{SimDuration, SimTime};
use crate::topology::{FatTree, Topology};

/// A configured simulation: node count + machine parameters.
///
/// ```
/// use cm5_sim::{Simulation, MachineParams, Op, ANY_TAG};
///
/// let sim = Simulation::new(8, MachineParams::cm5_1992());
/// // Node 0 sends 1 KB to node 1; everyone else is idle.
/// let mut programs = vec![Vec::new(); 8];
/// programs[0] = vec![Op::Send { to: 1, bytes: 1024, tag: ANY_TAG }];
/// programs[1] = vec![Op::Recv { from: 0, tag: ANY_TAG }];
/// let report = sim.run_ops(&programs).unwrap();
/// assert_eq!(report.messages, 1);
/// assert!(report.makespan.as_micros_f64() > 88.0);
/// ```
#[derive(Debug, Clone)]
pub struct Simulation {
    n: usize,
    params: MachineParams,
    record_trace: bool,
    trace_capacity: Option<usize>,
    record_rates: bool,
    topology: Topology,
    sim_jobs: usize,
    window_width: Option<SimDuration>,
}

impl Simulation {
    /// Create a simulation of `n` nodes (`n ≥ 2`) on the CM-5 fat tree.
    pub fn new(n: usize, params: MachineParams) -> Simulation {
        assert!(n >= 2, "simulation needs at least 2 nodes, got {n}");
        Simulation {
            n,
            params,
            record_trace: false,
            trace_capacity: None,
            record_rates: false,
            topology: Topology::FatTree(FatTree::new(n)),
            sim_jobs: 1,
            window_width: None,
        }
    }

    /// Create a simulation on an explicit [`Topology`] (e.g. the hypercube
    /// counterfactual the ablations compare against).
    pub fn new_on(topology: Topology, params: MachineParams) -> Simulation {
        let n = topology.nodes();
        assert!(n >= 2, "simulation needs at least 2 nodes, got {n}");
        Simulation {
            n,
            params,
            record_trace: false,
            trace_capacity: None,
            record_rates: false,
            topology,
            sim_jobs: 1,
            window_width: None,
        }
    }

    /// Enable the event trace in the returned report.
    pub fn record_trace(mut self, yes: bool) -> Simulation {
        self.record_trace = yes;
        self
    }

    /// Bound the trace sink to the most recent `cap` events (a ring buffer;
    /// evictions are counted in [`SimReport::trace_dropped`]). Unbounded by
    /// default. Only meaningful together with [`Simulation::record_trace`].
    pub fn trace_capacity(mut self, cap: usize) -> Simulation {
        self.trace_capacity = Some(cap.max(1));
        self
    }

    /// Record the flow solver's piecewise-constant per-link rate assignment
    /// at every recomputation into [`SimReport::rate_samples`]. Pure
    /// observation: simulated results are bit-identical either way.
    pub fn record_rates(mut self, yes: bool) -> Simulation {
        self.record_rates = yes;
        self
    }

    /// Execute op programs with `jobs` speculation workers (see the module
    /// docs). `1` (the default) is the plain serial engine; `0` means one
    /// worker per available core. Results are bit-identical at any value —
    /// the serial path doubles as the differential oracle. Only
    /// [`Simulation::run_ops`] parallelizes; the CMMD thread frontend is
    /// inherently one-OS-thread-per-node and always runs serially.
    pub fn sim_jobs(mut self, jobs: usize) -> Simulation {
        self.sim_jobs = jobs;
        self
    }

    /// Override the staging window width of the parallel engine (default:
    /// the machine's minimum message latency). Purely a batching knob;
    /// results are bit-identical at any width ≥ 1 ns.
    pub fn window_width(mut self, width: SimDuration) -> Simulation {
        self.window_width = Some(width);
        self
    }

    fn effective_jobs(&self) -> usize {
        if self.sim_jobs == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            self.sim_jobs
        }
    }

    /// Number of simulated nodes.
    pub fn nodes(&self) -> usize {
        self.n
    }

    /// The machine parameters in use.
    pub fn params(&self) -> &MachineParams {
        &self.params
    }

    /// Run per-node op programs to completion. `programs.len()` must equal
    /// the node count.
    pub fn run_ops(&self, programs: &[OpProgram]) -> Result<SimReport, SimError> {
        assert_eq!(
            programs.len(),
            self.n,
            "one program per node ({} programs for {} nodes)",
            programs.len(),
            self.n
        );
        let jobs = self.effective_jobs();
        if jobs <= 1 {
            let mut source = OpSource::new(programs, &self.params);
            return self.run_source(&mut source);
        }
        self.run_ops_windowed(programs, jobs)
    }

    /// The parallel path of [`Simulation::run_ops`]: a pool of `jobs`
    /// scoped speculation workers fed over channels, plus the merge thread
    /// (this one) running the event loop in windows.
    fn run_ops_windowed(&self, programs: &[OpProgram], jobs: usize) -> Result<SimReport, SimError> {
        self.params.validate().map_err(SimError::InvalidParams)?;
        let obs = ObsConfig {
            record_trace: self.record_trace,
            trace_capacity: self.trace_capacity,
            record_rates: self.record_rates,
        };
        let window = self
            .window_width
            .unwrap_or_else(|| self.params.min_message_latency())
            .max(SimDuration::from_nanos(1));
        let n = self.n;
        let source = OpSource::new(programs, &self.params);
        let part = build_partition(&self.topology, jobs);
        crossbeam::thread::scope(|scope| {
            let (res_tx, res_rx) = unbounded::<(usize, LocalRun)>();
            let mut req_txs = Vec::with_capacity(jobs);
            for wid in 0..jobs {
                let (req_tx, req_rx) = unbounded::<Vec<(usize, SimTime)>>();
                req_txs.push(req_tx);
                let res_tx = res_tx.clone();
                let src = &source;
                let params = &self.params;
                scope.spawn(move || worker_loop(wid, req_rx, res_tx, src, params, n));
            }
            drop(res_tx);
            let mut shared = SharedOpSource { inner: &source };
            let mut engine = Engine::new(self.topology.clone(), &self.params, obs, &mut shared);
            engine.par = Some(ParCtx {
                req_txs,
                res_rx,
                window,
                part,
                spec: (0..n).map(|_| None).collect(),
                windows: 0,
                worker_events: vec![0; jobs],
                merge_secs: 0.0,
            });
            engine.run()
            // `engine` (and with it every request sender) drops here, which
            // is what tells the workers to exit before the scope joins them.
        })
    }

    /// Drive any program source (op programs or the CMMD thread frontend).
    pub(crate) fn run_source<S: ProgramSource>(
        &self,
        source: &mut S,
    ) -> Result<SimReport, SimError> {
        self.params.validate().map_err(SimError::InvalidParams)?;
        let obs = ObsConfig {
            record_trace: self.record_trace,
            trace_capacity: self.trace_capacity,
            record_rates: self.record_rates,
        };
        let mut engine = Engine::new(self.topology.clone(), &self.params, obs, source);
        engine.run()
    }
}

/// Observability options threaded from [`Simulation`] into the engine.
/// Everything here is pure observation: simulated results are bit-identical
/// for every combination.
#[derive(Debug, Clone, Copy, Default)]
struct ObsConfig {
    record_trace: bool,
    trace_capacity: Option<usize>,
    record_rates: bool,
}

/// Engine event kinds.
#[derive(Debug)]
enum Ev {
    /// Node is ready: deliver its resume, pull actions until it blocks.
    Advance { node: usize },
    /// The node's blocked send/recv becomes visible for matching.
    PostComm { node: usize },
    /// The node arrives at a collective.
    PostCollective { node: usize },
    /// The node's oldest queued non-blocking send becomes visible for
    /// matching.
    PostAsync { node: usize },
    /// Re-examine the network for completed flows (stale if `gen` is old).
    NetCheck { gen: u64 },
}

#[derive(Debug)]
struct EvEntry {
    time: SimTime,
    seq: u64,
    ev: Ev,
}

impl PartialEq for EvEntry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for EvEntry {}
impl PartialOrd for EvEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for EvEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

struct PendingSend {
    dst: usize,
    tag: u32,
    bytes: u64,
    payload: Option<Bytes>,
    ready: SimTime,
}

/// A posted non-blocking send awaiting its rendezvous.
struct AsyncSend {
    src: usize,
    dst: usize,
    handle: u64,
    tag: u32,
    bytes: u64,
    payload: Option<Bytes>,
    ready: SimTime,
}

struct PendingRecv {
    from: Option<usize>,
    tag: u32,
}

struct MsgInfo {
    src: usize,
    dst: usize,
    bytes: u64,
    payload: Option<Bytes>,
    eager: bool,
    recv_claimed: bool,
    tag: u32,
    /// `Some(handle)` when this message came from a non-blocking send.
    async_handle: Option<u64>,
}

struct ArrivedMsg {
    msg_id: u64,
    src: usize,
    tag: u32,
    bytes: u64,
    payload: Option<Bytes>,
}

#[derive(Debug, Clone, PartialEq)]
enum CollKind {
    Barrier,
    SystemBcast { root: usize },
    Reduce { op: ReduceOp },
    Scan { op: ReduceOp, inclusive: bool },
}

struct CollectiveState {
    kind: CollKind,
    arrived: Vec<bool>,
    count: usize,
    /// Arrival time of the first node (the collective span's start).
    min_time: SimTime,
    max_time: SimTime,
    bytes: u64,
    payload: Option<Bytes>,
    values: Vec<f64>,
}

struct NodeMeta {
    clock: SimTime,
    done: bool,
    block_start: Option<SimTime>,
    report: NodeReport,
}

/// A non-blocking send a worker speculated: everything [`Engine::apply_run`]
/// needs to replay the posting at merge time. `ready` is the node's clock
/// right after the send overhead — the serial `PostAsync` event time.
struct SpecIsend {
    to: usize,
    tag: u32,
    bytes: u64,
    payload: Option<Bytes>,
    ready: SimTime,
}

/// How a speculated run ended.
enum SpecEnd {
    /// Program exhausted.
    Done,
    /// Invalid program or panic; surfaced at merge in canonical order.
    Error(SimError),
    /// Blocked on a send/recv/collective (overheads already folded into
    /// the run's clock, exactly as the serial engine charges them).
    Block(Action),
    /// Reached a wait-for-async-sends; satisfiability depends on shared
    /// state, so the merge thread re-evaluates it.
    Wait { handle: Option<u64> },
}

/// One node speculated from its resume point to its next blocking action.
struct LocalRun {
    node: usize,
    /// Node clock at the end of the run.
    clock: SimTime,
    /// Busy time accumulated over the run.
    busy: SimDuration,
    /// Non-blocking sends posted along the way, in program order.
    isends: Vec<SpecIsend>,
    end: SpecEnd,
    /// Actions pulled (a perf counter, never part of simulated results).
    steps: u64,
}

/// Worker-pool plumbing and counters for the windowed engine.
struct ParCtx {
    /// One staging-batch channel per worker.
    req_txs: Vec<Sender<Vec<(usize, SimTime)>>>,
    /// Workers' completed speculations, tagged with the worker id.
    res_rx: Receiver<(usize, LocalRun)>,
    /// Staging window width.
    window: SimDuration,
    /// node → worker affinity (whole fat-tree subtrees per worker).
    part: Vec<usize>,
    /// Speculated runs awaiting their `Advance` pop.
    spec: Vec<Option<LocalRun>>,
    windows: u64,
    worker_events: Vec<u64>,
    merge_secs: f64,
}

/// Walk one node's static action stream from `start` until it blocks, ends,
/// or errors. Pure function of the op program and machine parameters: no
/// engine state is read, which is why it can run on any thread at any time
/// between the node's resume and its `Advance` pop.
fn speculate(
    source: &OpSource<'_>,
    params: &MachineParams,
    n: usize,
    node: usize,
    start: SimTime,
) -> LocalRun {
    let mut run = LocalRun {
        node,
        clock: start,
        busy: SimDuration::ZERO,
        isends: Vec::new(),
        end: SpecEnd::Done,
        steps: 0,
    };
    loop {
        let action = match source.next_shared(node) {
            Ok(a) => a,
            Err(e) => {
                run.end = SpecEnd::Error(e);
                return run;
            }
        };
        run.steps += 1;
        match action {
            Action::Compute(d) => {
                run.clock += d;
                run.busy += d;
            }
            Action::Done => {
                run.end = SpecEnd::Done;
                return run;
            }
            Action::Panic(message) => {
                run.end = SpecEnd::Error(SimError::NodePanic { node, message });
                return run;
            }
            Action::Isend {
                to,
                tag,
                bytes,
                payload,
            } => {
                if to >= n || to == node {
                    run.end = SpecEnd::Error(SimError::BadProgram {
                        node,
                        detail: format!("isend of {bytes}B to invalid peer {to}"),
                    });
                    return run;
                }
                let oh = params.send_overhead;
                run.clock += oh;
                run.busy += oh;
                run.isends.push(SpecIsend {
                    to,
                    tag,
                    bytes,
                    payload,
                    ready: run.clock,
                });
            }
            Action::Send {
                to,
                tag,
                bytes,
                payload,
            } => {
                if to >= n || to == node {
                    run.end = SpecEnd::Error(SimError::BadProgram {
                        node,
                        detail: format!("send of {bytes}B to invalid peer {to}"),
                    });
                    return run;
                }
                let oh = params.send_overhead;
                run.clock += oh;
                run.busy += oh;
                run.end = SpecEnd::Block(Action::Send {
                    to,
                    tag,
                    bytes,
                    payload,
                });
                return run;
            }
            Action::Recv { from, tag } => {
                if let Some(f) = from {
                    if f >= n || f == node {
                        run.end = SpecEnd::Error(SimError::BadProgram {
                            node,
                            detail: format!("recv from invalid peer {f}"),
                        });
                        return run;
                    }
                }
                let oh = params.recv_overhead;
                run.clock += oh;
                run.busy += oh;
                run.end = SpecEnd::Block(Action::Recv { from, tag });
                return run;
            }
            Action::WaitSend { handle } => {
                run.end = SpecEnd::Wait { handle };
                return run;
            }
            a @ (Action::Barrier
            | Action::SystemBcast { .. }
            | Action::Reduce { .. }
            | Action::Scan { .. }) => {
                run.end = SpecEnd::Block(a);
                return run;
            }
        }
    }
}

/// Body of one speculation worker: drain staging batches until the engine
/// drops the request sender.
fn worker_loop(
    wid: usize,
    req_rx: Receiver<Vec<(usize, SimTime)>>,
    res_tx: Sender<(usize, LocalRun)>,
    source: &OpSource<'_>,
    params: &MachineParams,
    n: usize,
) {
    while let Ok(batch) = req_rx.recv() {
        for (node, start) in batch {
            if res_tx
                .send((wid, speculate(source, params, n, node, start)))
                .is_err()
            {
                return;
            }
        }
    }
}

/// node → worker map: the coarsest fat-tree level with at least `jobs`
/// groups, so each worker owns whole subtrees (good cache affinity on the
/// program slices). Affects only which worker speculates a node — never
/// results. Non-tree topologies fall back to contiguous blocks.
fn build_partition(topo: &Topology, jobs: usize) -> Vec<usize> {
    let n = topo.nodes();
    let block = |n: usize| (0..n).map(|node| node * jobs / n).collect::<Vec<_>>();
    match topo {
        Topology::FatTree(ft) => {
            for level in (1..ft.levels()).rev() {
                let groups = ft.groups_at(level);
                if groups >= jobs {
                    return (0..n)
                        .map(|node| ft.group_of(node, level) * jobs / groups)
                        .collect();
                }
            }
            block(n)
        }
        _ => block(n),
    }
}

struct Engine<'a, S: ProgramSource> {
    source: &'a mut S,
    params: &'a MachineParams,
    topo: Topology,
    network: Network,
    nodes: Vec<NodeMeta>,
    resume_slot: Vec<Option<Resume>>,
    blocked_action: Vec<Option<Action>>,
    pending_send: Vec<Option<PendingSend>>,
    pending_recv: Vec<Option<PendingRecv>>,
    /// Per-destination list of sources with a pending send targeting it.
    sends_to: Vec<Vec<usize>>,
    messages: HashMap<u64, MsgInfo>,
    arrived: Vec<Vec<ArrivedMsg>>,
    /// Per-node FIFO of posted-but-not-yet-visible non-blocking sends.
    async_queue: Vec<std::collections::VecDeque<AsyncSend>>,
    /// Per-destination list of async sends awaiting rendezvous.
    async_by_dst: Vec<Vec<AsyncSend>>,
    /// Per-node: handle → completed? for every outstanding/unwaited isend.
    async_state: Vec<HashMap<u64, bool>>,
    next_handle: u64,
    collective: Option<CollectiveState>,
    events: BinaryHeap<Reverse<EvEntry>>,
    seq: u64,
    net_gen: u64,
    msg_seq: u64,
    /// Batched admissions (incremental solver): network mutations at
    /// `pending_net_at` whose completion check is not yet scheduled.
    pending_net: bool,
    pending_net_at: SimTime,
    /// Event sequence number reserved at the *last* mutation of the batch,
    /// so the eventual NetCheck occupies exactly the queue position the
    /// eager per-mutation path would have given it.
    pending_net_seq: u64,
    /// Reused drain buffer for completed flows.
    completed_buf: Vec<Flow>,
    events_processed: u64,
    started: Instant,
    done_count: usize,
    // aggregate stats
    messages_done: u64,
    payload_bytes: u64,
    wire_bytes: u64,
    root_crossings: u64,
    collectives_done: u64,
    /// Currently buffered payload bytes per node (mailbox + parked async
    /// sends) and the running peak — the occupancy differential.
    buf_cur: Vec<u64>,
    buf_peak: Vec<u64>,
    trace: TraceRing,
    record_trace: bool,
    /// Worker pool state; `Some` turns `run` into the windowed merge loop.
    par: Option<ParCtx>,
    /// Windowed mode with tracing on: the current window's events, absorbed
    /// into the ring at each window boundary so eviction accounting happens
    /// at merge time ([`TraceRing::absorb`]).
    window_trace_buf: Option<Vec<TraceEvent>>,
}

impl<'a, S: ProgramSource> Engine<'a, S> {
    fn new(
        topo: Topology,
        params: &'a MachineParams,
        obs: ObsConfig,
        source: &'a mut S,
    ) -> Engine<'a, S> {
        let n = topo.nodes();
        let mut network = Network::new_on(topo.clone(), params);
        network.set_record_rates(obs.record_rates);
        // Pre-size per-node buffers from the program shape (capacity only;
        // a zero hint is always safe).
        let shape = source.shape();
        let inbound = |i: usize| shape.inbound.get(i).copied().unwrap_or(0) as usize;
        let async_inbound = |i: usize| shape.async_inbound.get(i).copied().unwrap_or(0) as usize;
        Engine {
            source,
            params,
            topo,
            network,
            nodes: (0..n)
                .map(|_| NodeMeta {
                    clock: SimTime::ZERO,
                    done: false,
                    block_start: None,
                    report: NodeReport::default(),
                })
                .collect(),
            resume_slot: (0..n).map(|_| Some(Resume::at(SimTime::ZERO))).collect(),
            blocked_action: (0..n).map(|_| None).collect(),
            pending_send: (0..n).map(|_| None).collect(),
            pending_recv: (0..n).map(|_| None).collect(),
            sends_to: vec![Vec::new(); n],
            messages: HashMap::new(),
            arrived: (0..n).map(|i| Vec::with_capacity(inbound(i))).collect(),
            async_queue: (0..n).map(|_| std::collections::VecDeque::new()).collect(),
            async_by_dst: (0..n)
                .map(|i| Vec::with_capacity(async_inbound(i)))
                .collect(),
            async_state: (0..n).map(|_| HashMap::new()).collect(),
            next_handle: 0,
            collective: None,
            events: BinaryHeap::new(),
            seq: 0,
            net_gen: 0,
            msg_seq: 0,
            pending_net: false,
            pending_net_at: SimTime::ZERO,
            pending_net_seq: 0,
            completed_buf: Vec::new(),
            events_processed: 0,
            started: Instant::now(),
            done_count: 0,
            messages_done: 0,
            payload_bytes: 0,
            wire_bytes: 0,
            root_crossings: 0,
            collectives_done: 0,
            buf_cur: vec![0; n],
            buf_peak: vec![0; n],
            trace: match (obs.record_trace, obs.trace_capacity) {
                (false, _) => TraceRing::default(),
                (true, Some(cap)) => TraceRing::bounded(cap),
                // MsgStart + MsgDone + sender/receiver BlockedEnd per
                // message, NodeDone per node (capacity hint only).
                (true, None) => TraceRing::unbounded(4 * shape.messages as usize + 2 * n),
            },
            record_trace: obs.record_trace,
            par: None,
            window_trace_buf: None,
        }
    }

    fn n(&self) -> usize {
        self.nodes.len()
    }

    fn push(&mut self, time: SimTime, ev: Ev) {
        let seq = self.seq;
        self.seq += 1;
        self.events.push(Reverse(EvEntry { time, seq, ev }));
    }

    fn trace(&mut self, time: SimTime, kind: TraceKind) {
        if self.record_trace {
            let ev = TraceEvent { time, kind };
            match &mut self.window_trace_buf {
                Some(buf) => buf.push(ev),
                None => self.trace.push(ev),
            }
        }
    }

    fn run(&mut self) -> Result<SimReport, SimError> {
        self.started = Instant::now();
        for node in 0..self.n() {
            self.push(SimTime::ZERO, Ev::Advance { node });
        }
        if self.par.is_some() {
            self.run_windowed()?;
        } else {
            while self.step(None)? {}
        }
        if self.done_count < self.n() {
            return Err(self.deadlock_error());
        }
        Ok(self.report())
    }

    /// Pop and dispatch one event. `until` is the windowed mode's exclusive
    /// time boundary: an event at or past it is put back and `Ok(false)` is
    /// returned. With `until = None` this is exactly the serial loop body;
    /// `Ok(false)` then means the heap drained with no pending batch.
    fn step(&mut self, until: Option<SimTime>) -> Result<bool, SimError> {
        let Some(Reverse(entry)) = self.events.pop() else {
            return Ok(self.flush_net());
        };
        if let Some(t1) = until {
            if entry.time >= t1 {
                self.events.push(Reverse(entry));
                return Ok(false);
            }
        }
        // A batched network mutation must schedule its completion check
        // before any event that sorts after the reserved queue position.
        if self.pending_net && (entry.time, entry.seq) > (self.pending_net_at, self.pending_net_seq)
        {
            self.flush_net();
            self.events.push(Reverse(entry));
            return Ok(true);
        }
        self.events_processed += 1;
        let t = entry.time;
        match entry.ev {
            Ev::Advance { node } => match self.take_spec(node) {
                Some(run) => self.apply_run(node, run)?,
                None => self.handle_advance(node)?,
            },
            Ev::PostComm { node } => self.handle_post_comm(node, t)?,
            Ev::PostCollective { node } => self.handle_post_collective(node, t)?,
            Ev::PostAsync { node } => self.handle_post_async(node, t),
            Ev::NetCheck { gen } => {
                if gen == self.net_gen {
                    self.handle_net(t);
                }
            }
        }
        Ok(true)
    }

    /// The windowed merge loop: repeatedly pick the next window `[t0, t0 +
    /// width)`, farm the staged nodes out to the workers, and drain the
    /// window's events — consuming speculated runs as their `Advance`
    /// events pop, in canonical order.
    fn run_windowed(&mut self) -> Result<(), SimError> {
        let width = self.par.as_ref().expect("windowed run without pool").window;
        if self.record_trace {
            self.window_trace_buf = Some(Vec::new());
        }
        let result = self.window_loop(width);
        // Absorb the final (possibly error-truncated) window's trace.
        if let Some(mut buf) = self.window_trace_buf.take() {
            self.trace.absorb(&mut buf);
        }
        result
    }

    fn window_loop(&mut self, width: SimDuration) -> Result<(), SimError> {
        loop {
            // Next window start: the earliest queued event (flushing any
            // pending network batch if the heap is momentarily empty).
            let t0 = loop {
                if let Some(Reverse(e)) = self.events.peek() {
                    break Some(e.time);
                }
                if !self.flush_net() {
                    break None;
                }
            };
            let Some(t0) = t0 else { return Ok(()) };
            self.stage(t0 + width);
            while self.step(Some(t0 + width))? {}
            if let Some(par) = &mut self.par {
                par.windows += 1;
            }
            if let Some(buf) = &mut self.window_trace_buf {
                if !buf.is_empty() {
                    let mut batch = std::mem::take(buf);
                    self.trace.absorb(&mut batch);
                    self.window_trace_buf = Some(batch);
                }
            }
        }
    }

    /// Farm every node resuming before `t1` out to its worker and collect
    /// the speculated runs. Skipped when fewer than two nodes are staged —
    /// the merge thread handles a lone node faster than a channel round
    /// trip. Field-level borrows only: `par` is held mutably while
    /// `resume_slot`/`nodes` are read.
    fn stage(&mut self, t1: SimTime) {
        let Some(par) = &mut self.par else { return };
        let staging = Instant::now();
        let mut batches: Vec<Vec<(usize, SimTime)>> = vec![Vec::new(); par.req_txs.len()];
        let mut count = 0usize;
        for (node, slot) in self.resume_slot.iter().enumerate() {
            if let Some(r) = slot {
                if r.time < t1 && par.spec[node].is_none() {
                    // A resumable node's clock always equals its resume
                    // time; speculate from there.
                    batches[par.part[node]].push((node, self.nodes[node].clock));
                    count += 1;
                }
            }
        }
        if count < 2 {
            return;
        }
        for (wid, batch) in batches.into_iter().enumerate() {
            if !batch.is_empty() {
                let _ = par.req_txs[wid].send(batch);
            }
        }
        for _ in 0..count {
            let Ok((wid, run)) = par.res_rx.recv() else {
                break;
            };
            par.worker_events[wid] += run.steps;
            let node = run.node;
            par.spec[node] = Some(run);
        }
        par.merge_secs += staging.elapsed().as_secs_f64();
    }

    fn take_spec(&mut self, node: usize) -> Option<LocalRun> {
        self.par.as_mut().and_then(|p| p.spec[node].take())
    }

    /// Replay a speculated run at the node's `Advance` pop: the merge-side
    /// half of [`speculate`]. Issues the queued isends' handles, events,
    /// and bookkeeping in exactly the order [`Engine::handle_advance`]
    /// would have, then lands the terminal action.
    fn apply_run(&mut self, node: usize, run: LocalRun) -> Result<(), SimError> {
        let _resume = self.resume_slot[node]
            .take()
            .expect("advance without a resume");
        for si in run.isends {
            let handle = self.next_handle;
            self.next_handle += 1;
            self.async_state[node].insert(handle, false);
            self.async_queue[node].push_back(AsyncSend {
                src: node,
                dst: si.to,
                handle,
                tag: si.tag,
                bytes: si.bytes,
                payload: si.payload,
                ready: si.ready,
            });
            self.push(si.ready, Ev::PostAsync { node });
        }
        self.nodes[node].clock = run.clock;
        self.nodes[node].report.busy += run.busy;
        match run.end {
            SpecEnd::Done => {
                self.nodes[node].done = true;
                self.nodes[node].report.finished_at = run.clock;
                self.done_count += 1;
                self.trace(run.clock, TraceKind::NodeDone { node });
                Ok(())
            }
            SpecEnd::Error(e) => Err(e),
            SpecEnd::Block(action) => {
                let at = run.clock;
                let ev = match &action {
                    Action::Send { .. } | Action::Recv { .. } => Ev::PostComm { node },
                    _ => Ev::PostCollective { node },
                };
                self.blocked_action[node] = Some(action);
                self.nodes[node].block_start = Some(at);
                self.push(at, ev);
                Ok(())
            }
            SpecEnd::Wait { handle } => {
                // Satisfiability depends on shared async state the worker
                // could not see; decide here, against canonical state.
                if self.wait_satisfied(node, handle) {
                    self.retire_waited(node, handle);
                    // Keep pulling actions serially — the node may run all
                    // the way to its next real block.
                    self.advance_loop(node, Resume::at(run.clock))
                } else {
                    self.blocked_action[node] = Some(Action::WaitSend { handle });
                    self.nodes[node].block_start = Some(run.clock);
                    Ok(())
                }
            }
        }
    }

    fn deadlock_error(&self) -> SimError {
        let mut waiting = Vec::new();
        let mut latest = SimTime::ZERO;
        for (i, meta) in self.nodes.iter().enumerate() {
            if meta.done {
                continue;
            }
            latest = latest.max(meta.clock);
            let what = if let Some(Action::WaitSend { handle }) = &self.blocked_action[i] {
                match handle {
                    Some(h) => format!("wait for async send handle {h}"),
                    None => "wait for all outstanding async sends".to_string(),
                }
            } else if let Some(ps) = &self.pending_send[i] {
                format!("send {}B to node {} (tag {})", ps.bytes, ps.dst, ps.tag)
            } else if let Some(pr) = &self.pending_recv[i] {
                match pr.from {
                    Some(s) => format!("recv from node {} (tag {})", s, pr.tag),
                    None => format!("recv from any (tag {})", pr.tag),
                }
            } else if let Some(c) = &self.collective {
                format!("collective {:?}", c.kind)
            } else {
                "unknown".to_string()
            };
            waiting.push(format!("node {i}: waiting on {what}"));
        }
        SimError::Deadlock {
            time: latest,
            waiting,
        }
    }

    /// Charge `bytes` of buffered payload to `node` and update its peak.
    fn buf_charge(&mut self, node: usize, bytes: u64) {
        self.buf_cur[node] += bytes;
        if self.buf_cur[node] > self.buf_peak[node] {
            self.buf_peak[node] = self.buf_cur[node];
        }
    }

    fn report(&mut self) -> SimReport {
        let makespan = self
            .nodes
            .iter()
            .map(|m| m.clock)
            .max()
            .unwrap_or(SimTime::ZERO)
            .since(SimTime::ZERO);
        SimReport {
            makespan,
            nodes: self.nodes.iter().map(|m| m.report.clone()).collect(),
            messages: self.messages_done,
            payload_bytes: self.payload_bytes,
            wire_bytes: self.wire_bytes,
            root_crossings: self.root_crossings,
            bytes_per_level: self.network.bytes_per_level(),
            collectives: self.collectives_done,
            trace: self.trace.take_events(),
            trace_dropped: self.trace.dropped(),
            rate_samples: self.network.take_rate_samples(),
            buffer_peak: self.buf_peak.clone(),
            perf: SimPerf {
                events: self.events_processed,
                recomputes: self.network.recompute_count(),
                flows: self.network.flows_admitted(),
                flows_peak: self.network.flows_peak(),
                wall_secs: self.started.elapsed().as_secs_f64(),
                windows: self.par.as_ref().map_or(0, |p| p.windows),
                worker_events: self
                    .par
                    .as_ref()
                    .map(|p| p.worker_events.clone())
                    .unwrap_or_default(),
                merge_secs: self.par.as_ref().map_or(0.0, |p| p.merge_secs),
            },
        }
    }

    /// Deliver the node's resume and pull actions until it blocks or ends.
    fn handle_advance(&mut self, node: usize) -> Result<(), SimError> {
        let resume = self.resume_slot[node]
            .take()
            .expect("advance without a resume");
        self.advance_loop(node, resume)
    }

    /// Pull the node's actions until it blocks or ends. Entered from an
    /// `Advance` pop and from a satisfied speculated wait at merge time.
    fn advance_loop(&mut self, node: usize, resume: Resume) -> Result<(), SimError> {
        let mut resume = resume;
        loop {
            let action = self.source.next(node, resume)?;
            let clock = self.nodes[node].clock;
            match action {
                Action::Compute(d) => {
                    self.nodes[node].clock += d;
                    self.nodes[node].report.busy += d;
                    resume = Resume::at(self.nodes[node].clock);
                }
                Action::Done => {
                    self.nodes[node].done = true;
                    self.nodes[node].report.finished_at = clock;
                    self.done_count += 1;
                    self.trace(clock, TraceKind::NodeDone { node });
                    return Ok(());
                }
                Action::Panic(message) => {
                    return Err(SimError::NodePanic { node, message });
                }
                Action::Send { to, bytes, .. } => {
                    if to >= self.n() || to == node {
                        return Err(SimError::BadProgram {
                            node,
                            detail: format!("send of {bytes}B to invalid peer {to}"),
                        });
                    }
                    let oh = self.params.send_overhead;
                    self.nodes[node].clock += oh;
                    self.nodes[node].report.busy += oh;
                    let at = self.nodes[node].clock;
                    self.blocked_action[node] = Some(action);
                    self.nodes[node].block_start = Some(at);
                    self.push(at, Ev::PostComm { node });
                    return Ok(());
                }
                Action::Isend {
                    to,
                    tag,
                    bytes,
                    payload,
                } => {
                    if to >= self.n() || to == node {
                        return Err(SimError::BadProgram {
                            node,
                            detail: format!("isend of {bytes}B to invalid peer {to}"),
                        });
                    }
                    // The sender still pays the software cost of posting.
                    let oh = self.params.send_overhead;
                    self.nodes[node].clock += oh;
                    self.nodes[node].report.busy += oh;
                    let at = self.nodes[node].clock;
                    let handle = self.next_handle;
                    self.next_handle += 1;
                    self.async_state[node].insert(handle, false);
                    self.async_queue[node].push_back(AsyncSend {
                        src: node,
                        dst: to,
                        handle,
                        tag,
                        bytes,
                        payload,
                        ready: at,
                    });
                    self.push(at, Ev::PostAsync { node });
                    // Not blocked: hand the handle back and keep running.
                    let mut r = Resume::at(at);
                    r.handle = Some(handle);
                    resume = r;
                }
                Action::WaitSend { handle } => {
                    if self.wait_satisfied(node, handle) {
                        self.retire_waited(node, handle);
                        resume = Resume::at(self.nodes[node].clock);
                    } else {
                        let at = self.nodes[node].clock;
                        self.blocked_action[node] = Some(Action::WaitSend { handle });
                        self.nodes[node].block_start = Some(at);
                        return Ok(());
                    }
                }
                Action::Recv { from, .. } => {
                    if let Some(f) = from {
                        if f >= self.n() || f == node {
                            return Err(SimError::BadProgram {
                                node,
                                detail: format!("recv from invalid peer {f}"),
                            });
                        }
                    }
                    let oh = self.params.recv_overhead;
                    self.nodes[node].clock += oh;
                    self.nodes[node].report.busy += oh;
                    let at = self.nodes[node].clock;
                    self.blocked_action[node] = Some(action);
                    self.nodes[node].block_start = Some(at);
                    self.push(at, Ev::PostComm { node });
                    return Ok(());
                }
                Action::Barrier
                | Action::SystemBcast { .. }
                | Action::Reduce { .. }
                | Action::Scan { .. } => {
                    let at = self.nodes[node].clock;
                    self.blocked_action[node] = Some(action);
                    self.nodes[node].block_start = Some(at);
                    self.push(at, Ev::PostCollective { node });
                    return Ok(());
                }
            }
        }
    }

    /// Resume a blocked node at `at` with `resume`.
    fn resume_node(&mut self, node: usize, at: SimTime, resume: Resume) {
        if let Some(start) = self.nodes[node].block_start.take() {
            self.nodes[node].report.blocked += at.since(start);
            self.trace(at, TraceKind::BlockedEnd { node, since: start });
        }
        self.nodes[node].clock = at;
        self.resume_slot[node] = Some(resume);
        self.push(at, Ev::Advance { node });
    }

    /// Is the node's wait condition met?
    fn wait_satisfied(&self, node: usize, handle: Option<u64>) -> bool {
        match handle {
            Some(h) => *self.async_state[node].get(&h).unwrap_or(&true),
            None => self.async_state[node].values().all(|&done| done),
        }
    }

    /// Drop bookkeeping for handles a satisfied wait covered.
    fn retire_waited(&mut self, node: usize, handle: Option<u64>) {
        match handle {
            Some(h) => {
                self.async_state[node].remove(&h);
            }
            None => self.async_state[node].clear(),
        }
    }

    /// A queued non-blocking send becomes visible for matching at `t`.
    fn handle_post_async(&mut self, node: usize, t: SimTime) {
        let req = self.async_queue[node]
            .pop_front()
            .expect("post-async without queued send");
        invariant_eq!(req.ready, t);
        match self.params.send_mode {
            SendMode::Rendezvous => {
                let dst = req.dst;
                if matches_recv(self.pending_recv[dst].as_ref(), node, req.tag) {
                    self.pending_recv[dst] = None;
                    self.start_message(
                        t,
                        node,
                        dst,
                        req.tag,
                        req.bytes,
                        req.payload,
                        false,
                        true,
                        Some(req.handle),
                    );
                } else {
                    self.buf_charge(dst, req.bytes);
                    self.async_by_dst[dst].push(req);
                }
            }
            SendMode::Eager => {
                let dst = req.dst;
                let claimed = matches_recv(self.pending_recv[dst].as_ref(), node, req.tag);
                self.start_message(
                    t,
                    node,
                    dst,
                    req.tag,
                    req.bytes,
                    req.payload,
                    true,
                    claimed,
                    Some(req.handle),
                );
            }
        }
    }

    /// A send/recv becomes visible for matching at time `t`.
    fn handle_post_comm(&mut self, node: usize, t: SimTime) -> Result<(), SimError> {
        let action = self.blocked_action[node]
            .take()
            .expect("post without action");
        match action {
            Action::Send {
                to,
                tag,
                bytes,
                payload,
            } => match self.params.send_mode {
                SendMode::Rendezvous => {
                    let matched = matches_recv(self.pending_recv[to].as_ref(), node, tag);
                    if matched {
                        self.pending_recv[to] = None;
                        self.start_message(t, node, to, tag, bytes, payload, false, true, None);
                    } else {
                        self.pending_send[node] = Some(PendingSend {
                            dst: to,
                            tag,
                            bytes,
                            payload,
                            ready: t,
                        });
                        self.sends_to[to].push(node);
                    }
                }
                SendMode::Eager => {
                    let claimed = matches_recv(self.pending_recv[to].as_ref(), node, tag);
                    let msg_id =
                        self.start_message(t, node, to, tag, bytes, payload, true, claimed, None);
                    let _ = msg_id;
                    // Sender resumes once its bytes are injected at leaf rate.
                    let inj = SimDuration::from_rate(
                        self.params.wire_bytes(bytes) as f64,
                        self.params.leaf_bandwidth,
                    );
                    self.resume_node(node, t + inj, Resume::at(t + inj));
                }
            },
            Action::Recv { from, tag } => {
                // 1) Eager mailbox (completed, unclaimed messages).
                if let Some(pos) = self.mailbox_match(node, from, tag) {
                    let msg = self.arrived[node].remove(pos);
                    self.buf_cur[node] = self.buf_cur[node].saturating_sub(msg.bytes);
                    self.resume_node(
                        node,
                        t,
                        Resume {
                            time: t,
                            payload: msg.payload,
                            from: Some(msg.src),
                            bytes: msg.bytes,
                            reduced: None,
                            handle: None,
                        },
                    );
                    return Ok(());
                }
                // 2) Eager in-flight messages: claim one, resume at completion.
                if self.params.send_mode == SendMode::Eager {
                    if let Some(id) = self.inflight_match(node, from, tag) {
                        self.messages.get_mut(&id).expect("msg").recv_claimed = true;
                        self.pending_recv[node] = Some(PendingRecv { from, tag });
                        return Ok(());
                    }
                }
                // 3) Rendezvous: a pending blocking or async send may be
                // waiting for us; the earliest-posted one wins.
                let blocking = self.rendezvous_match(node, from, tag).map(|src| {
                    let ready = self.pending_send[src].as_ref().expect("send").ready;
                    (ready, src)
                });
                let async_pos = self.async_match(node, from, tag);
                let use_async = match (blocking, async_pos) {
                    (Some((br, bs)), Some(pos)) => {
                        let a = &self.async_by_dst[node][pos];
                        (a.ready, a.src) < (br, bs)
                    }
                    (None, Some(_)) => true,
                    _ => false,
                };
                if use_async {
                    let req =
                        self.async_by_dst[node].remove(async_pos.expect("async candidate present"));
                    self.buf_cur[node] = self.buf_cur[node].saturating_sub(req.bytes);
                    self.start_message(
                        t,
                        req.src,
                        node,
                        req.tag,
                        req.bytes,
                        req.payload,
                        false,
                        true,
                        Some(req.handle),
                    );
                    return Ok(());
                }
                if let Some((_, src)) = blocking {
                    let ps = self.pending_send[src].take().expect("pending send");
                    self.sends_to[node].retain(|&s| s != src);
                    self.start_message(
                        t, src, node, ps.tag, ps.bytes, ps.payload, false, true, None,
                    );
                    return Ok(());
                }
                // 4) Nothing yet: block.
                self.pending_recv[node] = Some(PendingRecv { from, tag });
            }
            other => unreachable!("non-comm action {other:?} posted as comm"),
        }
        Ok(())
    }

    /// Position in `node`'s mailbox of the oldest message matching
    /// (`from`, `tag`), if any.
    fn mailbox_match(&self, node: usize, from: Option<usize>, tag: u32) -> Option<usize> {
        self.arrived[node]
            .iter()
            .enumerate()
            .filter(|(_, m)| m.tag == tag && from.is_none_or(|f| f == m.src))
            .min_by_key(|(_, m)| m.msg_id)
            .map(|(i, _)| i)
    }

    /// Oldest unclaimed in-flight message to `node` matching (`from`, `tag`).
    fn inflight_match(&self, node: usize, from: Option<usize>, tag: u32) -> Option<u64> {
        self.messages
            .iter()
            .filter(|(_, m)| {
                m.dst == node && !m.recv_claimed && m.tag == tag && from.is_none_or(|f| f == m.src)
            })
            .map(|(&id, _)| id)
            .min()
    }

    /// A pending (rendezvous) send targeting `node` that matches. For
    /// receive-any the earliest-posted send wins, ties by source id.
    fn rendezvous_match(&self, node: usize, from: Option<usize>, tag: u32) -> Option<usize> {
        match from {
            Some(src) => self.pending_send[src]
                .as_ref()
                .filter(|ps| ps.dst == node && ps.tag == tag)
                .map(|_| src),
            None => self.sends_to[node]
                .iter()
                .copied()
                .filter(|&s| {
                    self.pending_send[s]
                        .as_ref()
                        .is_some_and(|ps| ps.dst == node && ps.tag == tag)
                })
                .min_by_key(|&s| {
                    let ps = self.pending_send[s].as_ref().expect("send");
                    (ps.ready, s)
                }),
        }
    }

    /// The earliest-posted async send targeting `node` matching
    /// (`from`, `tag`), as an index into `async_by_dst[node]`.
    fn async_match(&self, node: usize, from: Option<usize>, tag: u32) -> Option<usize> {
        self.async_by_dst[node]
            .iter()
            .enumerate()
            .filter(|(_, a)| a.tag == tag && from.is_none_or(|f| f == a.src))
            .min_by_key(|(_, a)| (a.ready, a.src, a.handle))
            .map(|(i, _)| i)
    }

    /// Create the message record and its network flow starting at `t`.
    #[allow(clippy::too_many_arguments)]
    fn start_message(
        &mut self,
        t: SimTime,
        src: usize,
        dst: usize,
        tag: u32,
        bytes: u64,
        payload: Option<Bytes>,
        eager: bool,
        recv_claimed: bool,
        async_handle: Option<u64>,
    ) -> u64 {
        let msg_id = self.msg_seq;
        self.msg_seq += 1;
        let cap = self.params.flow_cap();
        let wire = self.params.wire_bytes(bytes);
        self.network.advance_to(t);
        self.network.add_flow(src, dst, wire, cap, msg_id);
        self.messages.insert(
            msg_id,
            MsgInfo {
                src,
                dst,
                bytes,
                payload,
                eager,
                recv_claimed,
                tag,
                async_handle,
            },
        );
        self.nodes[src].report.msgs_sent += 1;
        self.nodes[src].report.payload_sent += bytes;
        if self.topo.crosses_root(src, dst) {
            self.root_crossings += 1;
        }
        self.trace(
            t,
            TraceKind::MsgStart {
                src,
                dst,
                bytes,
                tag,
            },
        );
        self.note_net_mutation(t);
        msg_id
    }

    /// Bump the network generation and schedule the next completion check.
    fn reschedule_net(&mut self) {
        self.net_gen += 1;
        if let Some(tc) = self.network.next_completion() {
            let gen = self.net_gen;
            self.push(tc, Ev::NetCheck { gen });
        }
    }

    /// Record a network mutation at `t`. The eager solver reschedules the
    /// completion check immediately, once per mutation, exactly as the
    /// original engine did. The incremental solver batches: it reserves the
    /// event sequence number the eager path would have used and defers both
    /// the rate recompute and the scheduling until the whole same-timestamp
    /// batch has been admitted ([`Engine::flush_net`]).
    fn note_net_mutation(&mut self, t: SimTime) {
        match self.params.rate_solver {
            RateSolver::Full => self.reschedule_net(),
            RateSolver::Incremental | RateSolver::Hierarchical => {
                invariant!(
                    !self.pending_net || self.pending_net_at == t,
                    "a pending batch must be flushed before time advances"
                );
                // Bump the generation *now*, exactly as the eager path
                // does: any NetCheck already in the queue — including one
                // at this very timestamp with a smaller sequence number —
                // must be stale from this point on.
                self.net_gen += 1;
                let seq = self.seq;
                self.seq += 1;
                self.pending_net = true;
                self.pending_net_at = t;
                self.pending_net_seq = seq;
            }
        }
    }

    /// Schedule the completion check for a batch of same-timestamp network
    /// mutations. Returns whether a batch was pending.
    fn flush_net(&mut self) -> bool {
        if !self.pending_net {
            return false;
        }
        self.pending_net = false;
        // `next_completion` triggers the one rate recompute for the batch.
        // The generation was already bumped at the last mutation.
        if let Some(tc) = self.network.next_completion() {
            let gen = self.net_gen;
            self.events.push(Reverse(EvEntry {
                time: tc,
                seq: self.pending_net_seq,
                ev: Ev::NetCheck { gen },
            }));
        }
        true
    }

    /// Collect flows that completed at `t` and resume their endpoints.
    fn handle_net(&mut self, t: SimTime) {
        self.network.advance_to(t);
        let mut completed = std::mem::take(&mut self.completed_buf);
        self.network.drain_completed_into(&mut completed);
        for flow in completed.drain(..) {
            let msg = self
                .messages
                .remove(&flow.token)
                .expect("completed flow without message");
            self.messages_done += 1;
            self.payload_bytes += msg.bytes;
            self.wire_bytes += flow.wire_bytes;
            self.trace(
                t,
                TraceKind::MsgDone {
                    src: msg.src,
                    dst: msg.dst,
                    bytes: msg.bytes,
                    tag: msg.tag,
                },
            );
            let recv_at = t + self.params.wire_latency;
            let recv_resume = Resume {
                time: recv_at,
                payload: msg.payload,
                from: Some(msg.src),
                bytes: msg.bytes,
                reduced: None,
                handle: None,
            };
            // Sender side: async sends mark their handle done (possibly
            // waking a node blocked in WaitSend); blocking rendezvous sends
            // resume their sender; eager blocking sends resumed at injection.
            match msg.async_handle {
                Some(h) => self.complete_async_send(msg.src, h, t),
                None if !msg.eager => {
                    self.resume_node(msg.src, t, Resume::at(t));
                }
                None => {}
            }
            // Receiver side: under rendezvous a receive was already matched;
            // under eager the message may land in the mailbox.
            if msg.eager && !msg.recv_claimed {
                self.buf_charge(msg.dst, msg.bytes);
                self.arrived[msg.dst].push(ArrivedMsg {
                    msg_id: flow.token,
                    src: msg.src,
                    tag: msg.tag,
                    bytes: msg.bytes,
                    payload: recv_resume.payload,
                });
            } else {
                if msg.eager {
                    self.pending_recv[msg.dst] = None;
                }
                self.resume_node(msg.dst, recv_at, recv_resume);
            }
        }
        self.completed_buf = completed;
        self.note_net_mutation(t);
    }

    /// An async send's bytes have fully drained: mark its handle complete
    /// and wake the sender if it is blocked waiting on it.
    fn complete_async_send(&mut self, src: usize, handle: u64, t: SimTime) {
        self.async_state[src].insert(handle, true);
        if let Some(Action::WaitSend { handle: waited }) = self.blocked_action[src] {
            if self.wait_satisfied(src, waited) {
                self.blocked_action[src] = None;
                self.retire_waited(src, waited);
                let at = t.max(self.nodes[src].clock);
                self.resume_node(src, at, Resume::at(at));
            }
        }
    }

    /// A node arrives at a barrier / system broadcast / reduction.
    fn handle_post_collective(&mut self, node: usize, t: SimTime) -> Result<(), SimError> {
        let action = self.blocked_action[node]
            .take()
            .expect("collective post without action");
        let (kind, bytes, payload, value) = match action {
            Action::Barrier => (CollKind::Barrier, 0, None, 0.0),
            Action::SystemBcast {
                root,
                bytes,
                payload,
            } => (CollKind::SystemBcast { root }, bytes, payload, 0.0),
            Action::Reduce { op, value } => (CollKind::Reduce { op }, 0, None, value),
            Action::Scan {
                op,
                value,
                inclusive,
            } => (CollKind::Scan { op, inclusive }, 0, None, value),
            other => unreachable!("non-collective action {other:?}"),
        };
        let n = self.n();
        let st = self.collective.get_or_insert_with(|| CollectiveState {
            kind: kind.clone(),
            arrived: vec![false; n],
            count: 0,
            min_time: t,
            max_time: SimTime::ZERO,
            bytes: 0,
            payload: None,
            values: vec![0.0; n],
        });
        if st.kind != kind {
            return Err(SimError::CollectiveMismatch {
                detail: format!(
                    "node {node} entered {:?} while the machine is in {:?}",
                    kind, st.kind
                ),
            });
        }
        invariant!(!st.arrived[node], "double collective arrival");
        st.arrived[node] = true;
        st.count += 1;
        st.max_time = st.max_time.max(t);
        st.values[node] = value;
        if let CollKind::SystemBcast { root } = kind {
            if node == root {
                st.bytes = bytes;
                st.payload = payload;
            }
        }
        if st.count < n {
            return Ok(());
        }
        // Everyone arrived: compute the finish time and resume all nodes.
        let st = self.collective.take().expect("collective state");
        let mut finish = st.max_time + self.params.control_latency;
        let mut reduced = None;
        let mut per_node: Option<Vec<f64>> = None;
        let fold = |op: &ReduceOp, acc: f64, v: f64| match op {
            ReduceOp::Sum => acc + v,
            ReduceOp::Max => acc.max(v),
            ReduceOp::Min => acc.min(v),
        };
        match &st.kind {
            CollKind::Barrier => {}
            CollKind::SystemBcast { .. } => {
                finish += self.params.system_bcast_overhead;
                finish += SimDuration::from_rate(
                    self.params.wire_bytes(st.bytes) as f64,
                    self.params.system_bcast_bandwidth,
                );
            }
            CollKind::Reduce { op } => {
                // Fold in node order for bit-reproducibility.
                let mut acc = st.values[0];
                for &v in &st.values[1..] {
                    acc = fold(op, acc, v);
                }
                reduced = Some(acc);
            }
            CollKind::Scan { op, inclusive } => {
                // Parallel prefix over node order, in hardware on the real
                // control network. Exclusive scans yield the operator's
                // identity on node 0.
                let identity = match op {
                    ReduceOp::Sum => 0.0,
                    ReduceOp::Max => f64::NEG_INFINITY,
                    ReduceOp::Min => f64::INFINITY,
                };
                let mut prefixes = Vec::with_capacity(n);
                let mut acc = identity;
                for &v in &st.values {
                    if *inclusive {
                        acc = fold(op, acc, v);
                        prefixes.push(acc);
                    } else {
                        prefixes.push(acc);
                        acc = fold(op, acc, v);
                    }
                }
                per_node = Some(prefixes);
            }
        }
        let what = match st.kind {
            CollKind::Barrier => "barrier",
            CollKind::SystemBcast { .. } => "system_bcast",
            CollKind::Reduce { .. } => "reduce",
            CollKind::Scan { .. } => "scan",
        };
        self.trace(
            finish,
            TraceKind::CollectiveDone {
                what,
                first_arrival: st.min_time,
            },
        );
        self.collectives_done += 1;
        for i in 0..n {
            let resume = Resume {
                time: finish,
                payload: st.payload.clone(),
                from: None,
                bytes: st.bytes,
                reduced: per_node.as_ref().map(|p| p[i]).or(reduced),
                handle: None,
            };
            self.resume_node(i, finish, resume);
        }
        Ok(())
    }
}

fn matches_recv(recv: Option<&PendingRecv>, src: usize, tag: u32) -> bool {
    recv.is_some_and(|r| r.tag == tag && r.from.is_none_or(|f| f == src))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{Op, ANY_TAG};

    fn sim(n: usize) -> Simulation {
        Simulation::new(n, MachineParams::cm5_1992())
    }

    fn idle(n: usize) -> Vec<OpProgram> {
        vec![Vec::new(); n]
    }

    #[test]
    fn empty_programs_finish_at_zero() {
        let r = sim(4).run_ops(&idle(4)).unwrap();
        assert_eq!(r.makespan, SimDuration::ZERO);
        assert_eq!(r.messages, 0);
    }

    #[test]
    fn single_message_latency() {
        // Receiver posts immediately; 0-byte message: 40 µs send overhead +
        // 1 packet (20 wire bytes) at the 10 MB/s flow cap (2 µs) + 8 µs
        // wire latency = 50 µs; the receiver burned its own 40 µs posting in
        // parallel.
        let mut p = idle(2);
        p[0] = vec![Op::Send {
            to: 1,
            bytes: 0,
            tag: ANY_TAG,
        }];
        p[1] = vec![Op::Recv {
            from: 0,
            tag: ANY_TAG,
        }];
        let r = sim(2).run_ops(&p).unwrap();
        assert_eq!(r.makespan.as_micros_f64(), 50.0);
        assert_eq!(r.messages, 1);
        assert_eq!(r.wire_bytes, 20);
    }

    #[test]
    fn rendezvous_blocks_sender_until_recv_posts() {
        // Receiver computes 1 ms first; the sender must wait.
        let mut p = idle(2);
        p[0] = vec![Op::Send {
            to: 1,
            bytes: 1600,
            tag: ANY_TAG,
        }];
        p[1] = vec![
            Op::Compute(SimDuration::from_millis(1)),
            Op::Recv {
                from: 0,
                tag: ANY_TAG,
            },
        ];
        let r = sim(2).run_ops(&p).unwrap();
        // Transfer (2000 wire bytes at the 10 MB/s flow cap = 200 µs) starts
        // at 1 ms + 40 µs recv overhead.
        let expect_us = 1000.0 + 40.0 + 200.0 + 8.0;
        assert_eq!(r.makespan.as_micros_f64(), expect_us);
        // Sender blocked for ~1 ms.
        assert!(r.nodes[0].blocked.as_micros_f64() > 900.0);
    }

    #[test]
    fn eager_mode_frees_the_sender() {
        let mut params = MachineParams::cm5_1992();
        params.send_mode = SendMode::Eager;
        let mut p = idle(2);
        p[0] = vec![Op::Send {
            to: 1,
            bytes: 1600,
            tag: ANY_TAG,
        }];
        p[1] = vec![
            Op::Compute(SimDuration::from_millis(1)),
            Op::Recv {
                from: 0,
                tag: ANY_TAG,
            },
        ];
        let r = Simulation::new(2, params).run_ops(&p).unwrap();
        // Sender finished long before the receiver even posted.
        assert!(r.nodes[0].finished_at.as_micros_f64() < 200.0);
        // Receiver finds the message in its mailbox: resumes right away.
        assert!(r.makespan.as_micros_f64() < 1100.0);
        assert_eq!(r.messages, 1);
    }

    #[test]
    fn recv_any_takes_earliest_posted_send() {
        // Nodes 1 and 2 both send to 0; node 2 posts earlier (node 1
        // computes first). RecvAny must take node 2's message first.
        let mut p = idle(3);
        p[0] = vec![Op::RecvAny { tag: 5 }, Op::RecvAny { tag: 5 }];
        p[1] = vec![
            Op::Compute(SimDuration::from_millis(2)),
            Op::Send {
                to: 0,
                bytes: 64,
                tag: 5,
            },
        ];
        p[2] = vec![Op::Send {
            to: 0,
            bytes: 64,
            tag: 5,
        }];
        let r = sim(4).run_ops(&pad(p, 4)).unwrap();
        // If 0 waited for node 1 first, makespan would exceed 2 ms plus two
        // transfers; taking node 2 first overlaps node 1's compute.
        assert!(r.makespan.as_millis_f64() < 2.5);
        assert_eq!(r.messages, 2);
    }

    fn pad(mut p: Vec<OpProgram>, n: usize) -> Vec<OpProgram> {
        while p.len() < n {
            p.push(Vec::new());
        }
        p
    }

    #[test]
    fn tag_mismatch_deadlocks_with_diagnostic() {
        let mut p = idle(2);
        p[0] = vec![Op::Send {
            to: 1,
            bytes: 8,
            tag: 1,
        }];
        p[1] = vec![Op::Recv { from: 0, tag: 2 }];
        let err = sim(2).run_ops(&p).unwrap_err();
        match err {
            SimError::Deadlock { waiting, .. } => {
                assert_eq!(waiting.len(), 2);
                assert!(waiting[0].contains("send"));
                assert!(waiting[1].contains("recv"));
            }
            other => panic!("expected deadlock, got {other}"),
        }
    }

    #[test]
    fn missing_partner_deadlocks() {
        let mut p = idle(2);
        p[0] = vec![Op::Recv {
            from: 1,
            tag: ANY_TAG,
        }];
        let err = sim(2).run_ops(&p).unwrap_err();
        assert!(matches!(err, SimError::Deadlock { .. }));
    }

    #[test]
    fn send_to_self_rejected() {
        let mut p = idle(2);
        p[0] = vec![Op::Send {
            to: 0,
            bytes: 8,
            tag: ANY_TAG,
        }];
        let err = sim(2).run_ops(&p).unwrap_err();
        assert!(matches!(err, SimError::BadProgram { node: 0, .. }));
    }

    #[test]
    fn barrier_synchronizes_clocks() {
        let mut p = idle(4);
        for (i, prog) in p.iter_mut().enumerate() {
            prog.push(Op::Compute(SimDuration::from_micros(100 * i as u64)));
            prog.push(Op::Barrier);
        }
        let r = sim(4).run_ops(&p).unwrap();
        // Everyone leaves at max arrival (300 µs) + control latency (5 µs).
        let expect = SimDuration::from_micros(305);
        for nr in &r.nodes {
            assert_eq!(nr.finished_at.since(SimTime::ZERO), expect);
        }
        assert_eq!(r.collectives, 1);
    }

    #[test]
    fn collective_mismatch_detected() {
        let mut p = idle(2);
        p[0] = vec![Op::Barrier];
        p[1] = vec![Op::Reduce];
        let err = sim(2).run_ops(&p).unwrap_err();
        assert!(matches!(err, SimError::CollectiveMismatch { .. }));
    }

    #[test]
    fn system_bcast_costs_partition_time() {
        let mut p = idle(4);
        for prog in p.iter_mut() {
            prog.push(Op::SystemBcast {
                root: 0,
                bytes: 1024,
            });
        }
        let r = sim(4).run_ops(&p).unwrap();
        // 5 µs control + 150 µs overhead + 1280 wire bytes / 1.2 MB/s.
        let stream_us = 1280.0 / 1.2e6 * 1e6;
        let expect = 5.0 + 150.0 + stream_us;
        assert!((r.makespan.as_micros_f64() - expect).abs() < 1.0);
    }

    #[test]
    fn exchange_pair_serializes_two_transfers() {
        // Paper ordering: node 0 (lower) receives first, node 1 sends first.
        let bytes = 16_000u64; // 20_000 wire bytes = 2 ms at the 10 MB/s cap
        let mut p = idle(2);
        p[0] = vec![
            Op::Recv {
                from: 1,
                tag: ANY_TAG,
            },
            Op::Send {
                to: 1,
                bytes,
                tag: ANY_TAG,
            },
        ];
        p[1] = vec![
            Op::Send {
                to: 0,
                bytes,
                tag: ANY_TAG,
            },
            Op::Recv {
                from: 0,
                tag: ANY_TAG,
            },
        ];
        let r = sim(2).run_ops(&p).unwrap();
        // Two sequential 2 ms transfers plus overheads; well above 4 ms.
        assert!(r.makespan.as_millis_f64() > 4.0);
        assert!(r.makespan.as_millis_f64() < 4.5);
        assert_eq!(r.messages, 2);
    }

    #[test]
    fn lex_style_fan_in_serializes() {
        // 7 nodes send to node 0 which receives them one by one: the total
        // must be roughly 7 transfer times, not 1.
        let n = 8;
        let bytes = 16_000u64;
        let mut p = idle(n);
        for s in 1..n {
            p[s] = vec![Op::Send {
                to: 0,
                bytes,
                tag: ANY_TAG,
            }];
            p[0].push(Op::Recv {
                from: s,
                tag: ANY_TAG,
            });
        }
        let r = sim(n).run_ops(&p).unwrap();
        assert!(r.makespan.as_millis_f64() > 14.0);
        assert_eq!(r.messages, 7);
        // Senders spent most of the run blocked.
        assert!(r.mean_blocked_fraction() > 0.5);
    }

    #[test]
    fn trace_records_message_lifecycle() {
        let mut p = idle(2);
        p[0] = vec![Op::Send {
            to: 1,
            bytes: 4,
            tag: ANY_TAG,
        }];
        p[1] = vec![Op::Recv {
            from: 0,
            tag: ANY_TAG,
        }];
        let r = sim(2).record_trace(true).run_ops(&p).unwrap();
        let kinds: Vec<_> = r.trace.iter().map(|e| &e.kind).collect();
        assert!(kinds
            .iter()
            .any(|k| matches!(k, TraceKind::MsgStart { src: 0, dst: 1, .. })));
        assert!(kinds
            .iter()
            .any(|k| matches!(k, TraceKind::MsgDone { src: 0, dst: 1, .. })));
    }

    #[test]
    fn deterministic_repeat_runs() {
        let n = 16;
        let mut p = idle(n);
        // A messy pattern: ring exchange with varying sizes + a barrier.
        for (i, prog) in p.iter_mut().enumerate().take(n) {
            let next = (i + 1) % n;
            let prev = (i + n - 1) % n;
            if i.is_multiple_of(2) {
                prog.push(Op::Recv { from: prev, tag: 1 });
                prog.push(Op::Send {
                    to: next,
                    bytes: 100 * (i as u64 + 1),
                    tag: 1,
                });
            } else {
                prog.push(Op::Send {
                    to: next,
                    bytes: 100 * (i as u64 + 1),
                    tag: 1,
                });
                prog.push(Op::Recv { from: prev, tag: 1 });
            }
            prog.push(Op::Barrier);
        }
        let r1 = sim(n).run_ops(&p).unwrap();
        let r2 = sim(n).run_ops(&p).unwrap();
        assert_eq!(r1.makespan, r2.makespan);
        assert_eq!(r1.wire_bytes, r2.wire_bytes);
        for (a, b) in r1.nodes.iter().zip(&r2.nodes) {
            assert_eq!(a.finished_at, b.finished_at);
            assert_eq!(a.blocked, b.blocked);
        }
    }

    /// A messy mixed program for the parallel-identity tests: ring traffic
    /// with odd sizes, isends + waits, compute skew, and collectives.
    fn messy_programs(n: usize) -> Vec<OpProgram> {
        let mut p = idle(n);
        for (i, prog) in p.iter_mut().enumerate().take(n) {
            let next = (i + 1) % n;
            let prev = (i + n - 1) % n;
            prog.push(Op::Compute(SimDuration::from_micros(13 * i as u64)));
            if i.is_multiple_of(2) {
                prog.push(Op::Recv { from: prev, tag: 1 });
                prog.push(Op::Send {
                    to: next,
                    bytes: 100 * (i as u64 + 1),
                    tag: 1,
                });
            } else {
                prog.push(Op::Send {
                    to: next,
                    bytes: 100 * (i as u64 + 1),
                    tag: 1,
                });
                prog.push(Op::Recv { from: prev, tag: 1 });
            }
            prog.push(Op::Isend {
                to: next,
                bytes: 64,
                tag: 2,
            });
            prog.push(Op::Barrier);
            prog.push(Op::Recv { from: prev, tag: 2 });
            prog.push(Op::WaitAll);
        }
        p
    }

    fn assert_identical(a: &SimReport, b: &SimReport) {
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.messages, b.messages);
        assert_eq!(a.payload_bytes, b.payload_bytes);
        assert_eq!(a.wire_bytes, b.wire_bytes);
        assert_eq!(a.root_crossings, b.root_crossings);
        assert_eq!(a.collectives, b.collectives);
        assert_eq!(a.bytes_per_level, b.bytes_per_level);
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.trace_dropped, b.trace_dropped);
        assert_eq!(a.rate_samples, b.rate_samples);
        for (x, y) in a.nodes.iter().zip(&b.nodes) {
            assert_eq!(x.busy, y.busy);
            assert_eq!(x.blocked, y.blocked);
            assert_eq!(x.msgs_sent, y.msgs_sent);
            assert_eq!(x.payload_sent, y.payload_sent);
            assert_eq!(x.finished_at, y.finished_at);
        }
        // Even the pure-function perf counters must line up: the windowed
        // engine pops the identical event sequence.
        assert_eq!(a.perf.events, b.perf.events);
        assert_eq!(a.perf.recomputes, b.perf.recomputes);
        assert_eq!(a.perf.flows, b.perf.flows);
    }

    #[test]
    fn windowed_run_is_bit_identical_to_serial() {
        let n = 16;
        let p = messy_programs(n);
        let serial = sim(n)
            .record_trace(true)
            .record_rates(true)
            .run_ops(&p)
            .unwrap();
        for jobs in [2usize, 3, 8] {
            let par = sim(n)
                .record_trace(true)
                .record_rates(true)
                .sim_jobs(jobs)
                .run_ops(&p)
                .unwrap();
            assert_identical(&serial, &par);
            assert!(par.perf.windows > 0, "jobs {jobs} never windowed");
            assert_eq!(par.perf.worker_events.len(), jobs);
        }
    }

    #[test]
    fn window_width_is_a_pure_perf_knob() {
        let n = 16;
        let p = messy_programs(n);
        let serial = sim(n).record_trace(true).run_ops(&p).unwrap();
        for width_us in [1u64, 10, 88, 1000] {
            let par = sim(n)
                .record_trace(true)
                .sim_jobs(4)
                .window_width(SimDuration::from_micros(width_us))
                .run_ops(&p)
                .unwrap();
            assert_identical(&serial, &par);
        }
    }

    #[test]
    fn windowed_bounded_trace_ring_matches_serial() {
        let n = 16;
        let p = messy_programs(n);
        let serial = sim(n)
            .record_trace(true)
            .trace_capacity(17)
            .run_ops(&p)
            .unwrap();
        assert!(serial.trace_dropped > 0, "test needs evictions");
        let par = sim(n)
            .record_trace(true)
            .trace_capacity(17)
            .sim_jobs(4)
            .run_ops(&p)
            .unwrap();
        assert_eq!(serial.trace, par.trace);
        assert_eq!(serial.trace_dropped, par.trace_dropped);
    }

    #[test]
    fn windowed_errors_match_serial() {
        // Deadlocks and bad programs surface identically under speculation.
        let mut p = idle(4);
        p[0] = vec![Op::Recv {
            from: 1,
            tag: ANY_TAG,
        }];
        let err = sim(4).sim_jobs(4).run_ops(&p).unwrap_err();
        assert!(matches!(err, SimError::Deadlock { .. }));
        let mut p = idle(4);
        p[0] = vec![Op::Send {
            to: 0,
            bytes: 8,
            tag: ANY_TAG,
        }];
        p[1] = vec![Op::Send {
            to: 9,
            bytes: 8,
            tag: ANY_TAG,
        }];
        let err = sim(4).sim_jobs(4).run_ops(&p).unwrap_err();
        // Canonical merge order: node 0's error pops first.
        assert!(matches!(err, SimError::BadProgram { node: 0, .. }));
    }

    #[test]
    fn sim_jobs_zero_uses_available_cores() {
        let p = messy_programs(8);
        let serial = sim(8).run_ops(&p).unwrap();
        let par = sim(8).sim_jobs(0).run_ops(&p).unwrap();
        assert_eq!(serial.makespan, par.makespan);
    }

    #[test]
    fn partition_follows_fat_tree_subtrees() {
        let topo = Topology::FatTree(FatTree::new(64));
        let part = build_partition(&topo, 4);
        assert_eq!(part.len(), 64);
        // 4 workers over 64 nodes: one level-2 subtree (16 nodes) each.
        for (node, &w) in part.iter().enumerate() {
            assert_eq!(w, node / 16);
        }
        // More workers than any level has groups: contiguous blocks.
        let part = build_partition(&topo, 64);
        assert!(part.iter().enumerate().all(|(i, &w)| w == i));
        // Every worker id stays in range whatever the ratio.
        for jobs in [2usize, 3, 5, 7, 9, 100] {
            let part = build_partition(&topo, jobs);
            assert!(part.iter().all(|&w| w < jobs));
        }
    }

    /// Satellite: the worker-shared state must be (and stay) thread-safe by
    /// construction — `#![forbid(unsafe_code)]` means these bounds come
    /// from std/shim primitives only.
    #[test]
    fn worker_shared_engine_state_is_send_sync() {
        fn send_sync<T: Send + Sync>() {}
        fn send<T: Send>() {}
        send_sync::<OpSource<'static>>();
        send_sync::<MachineParams>();
        send::<LocalRun>();
        send::<Sender<Vec<(usize, SimTime)>>>();
        send::<Receiver<(usize, LocalRun)>>();
        send::<Sender<(usize, LocalRun)>>();
    }

    #[test]
    fn root_crossing_counted() {
        let mut p = idle(8);
        p[0] = vec![Op::Send {
            to: 4,
            bytes: 64,
            tag: ANY_TAG,
        }];
        p[4] = vec![Op::Recv {
            from: 0,
            tag: ANY_TAG,
        }];
        p[1] = vec![Op::Send {
            to: 2,
            bytes: 64,
            tag: ANY_TAG,
        }];
        p[2] = vec![Op::Recv {
            from: 1,
            tag: ANY_TAG,
        }];
        let r = sim(8).run_ops(&p).unwrap();
        assert_eq!(r.root_crossings, 1);
        assert_eq!(r.messages, 2);
    }
}
