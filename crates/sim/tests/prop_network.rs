//! Property-based tests of the flow-level network model: whatever random
//! flow population we throw at it, rate allocations must respect every
//! capacity, never starve a flow, and conserve bytes.

use cm5_sim::network::Network;
use cm5_sim::{FairnessModel, FatTree, MachineParams, SimTime};
use proptest::prelude::*;

/// A random set of (src, dst, wire_bytes) flows on an `n`-node tree.
fn flows_strategy(n: usize) -> impl Strategy<Value = Vec<(usize, usize, u64)>> {
    prop::collection::vec(
        (0..n, 0..n, 20u64..100_000).prop_filter("distinct endpoints", |(a, b, _)| a != b),
        1..40,
    )
}

fn build(n: usize, fairness: FairnessModel) -> (Network, MachineParams) {
    let mut params = MachineParams::cm5_1992();
    params.fairness = fairness;
    let net = Network::new(FatTree::new(n), &params);
    (net, params)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Max-min allocation: every flow gets a positive rate, no flow exceeds
    /// its cap, and no link is oversubscribed.
    #[test]
    fn max_min_respects_caps_and_capacities(
        flows in flows_strategy(32),
    ) {
        let (mut net, params) = build(32, FairnessModel::MaxMin);
        let tree = FatTree::new(32);
        let cap = params.flow_cap();
        for (i, &(src, dst, bytes)) in flows.iter().enumerate() {
            net.add_flow(src, dst, bytes, cap, i as u64);
        }
        // Per-link load accounting.
        let mut load = vec![0.0f64; tree.link_count()];
        let mut checked = 0;
        for fid in 0..flows.len() as u64 {
            // Access flows through completion: instead, drive the network
            // and verify via next_completion monotonicity below. For the
            // direct rate check we re-derive loads from routes.
            let (src, dst, _) = flows[fid as usize];
            let route = tree.route(src, dst);
            let rate = net.flow_rate(fid).expect("flow exists");
            prop_assert!(rate > 0.0, "flow {fid} starved");
            prop_assert!(rate <= cap * (1.0 + 1e-9), "flow {fid} over cap: {rate}");
            for l in route {
                load[l] += rate;
            }
            checked += 1;
        }
        prop_assert_eq!(checked, flows.len());
        for (l, &used) in load.iter().enumerate() {
            let capacity = tree.link_capacity(tree.link_from_index(l), &params);
            prop_assert!(
                used <= capacity * (1.0 + 1e-6),
                "link {l} oversubscribed: {used} > {capacity}"
            );
        }
    }

    /// Max-min dominates equal-share pointwise (it only redistributes
    /// headroom, never takes bandwidth below the naive share).
    #[test]
    fn max_min_weakly_dominates_equal_share(flows in flows_strategy(16)) {
        let (mut mm, params) = build(16, FairnessModel::MaxMin);
        let (mut es, _) = build(16, FairnessModel::EqualShare);
        let cap = params.flow_cap();
        for (i, &(src, dst, bytes)) in flows.iter().enumerate() {
            mm.add_flow(src, dst, bytes, cap, i as u64);
            es.add_flow(src, dst, bytes, cap, i as u64);
        }
        for fid in 0..flows.len() as u64 {
            let m = mm.flow_rate(fid).expect("flow");
            let e = es.flow_rate(fid).expect("flow");
            prop_assert!(m >= e * (1.0 - 1e-9), "flow {fid}: maxmin {m} < equal {e}");
        }
    }

    /// Draining the network completes every flow exactly once and conserves
    /// wire bytes in the per-level accounting.
    #[test]
    fn drain_conserves_bytes(flows in flows_strategy(8)) {
        let (mut net, params) = build(8, FairnessModel::MaxMin);
        let cap = params.flow_cap();
        let mut expected_level_bytes = 0.0;
        let tree = FatTree::new(8);
        for (i, &(src, dst, bytes)) in flows.iter().enumerate() {
            net.add_flow(src, dst, bytes, cap, i as u64);
            expected_level_bytes += (bytes * tree.route(src, dst).len() as u64) as f64;
        }
        let mut completed = 0;
        let mut guard = 0;
        while let Some(t) = net.next_completion() {
            net.advance_to(t);
            completed += net.take_completed().len();
            guard += 1;
            prop_assert!(guard < 10_000, "drain did not terminate");
        }
        prop_assert_eq!(completed, flows.len());
        let total: f64 = net.bytes_per_level().iter().sum();
        prop_assert!(
            (total - expected_level_bytes).abs() < 1.0 + expected_level_bytes * 1e-9,
            "bytes accounting: {total} vs {expected_level_bytes}"
        );
    }

    /// Completion order respects work: among flows sharing identical
    /// endpoints-class (same route length) added simultaneously, a strictly
    /// larger flow never finishes first... simplest robust form: the network
    /// drains in nondecreasing time.
    #[test]
    fn completions_monotone_in_time(flows in flows_strategy(16)) {
        let (mut net, params) = build(16, FairnessModel::MaxMin);
        let cap = params.flow_cap();
        for (i, &(src, dst, bytes)) in flows.iter().enumerate() {
            net.add_flow(src, dst, bytes, cap, i as u64);
        }
        let mut last = SimTime::ZERO;
        while let Some(t) = net.next_completion() {
            prop_assert!(t >= last, "time went backwards: {t} < {last}");
            last = t;
            net.advance_to(t);
            prop_assert!(!net.take_completed().is_empty(), "no progress at {t}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Cross-validation: the fluid (flow-level) model's aggregate delivery
    /// time tracks the packet-level reference within 20 % on random
    /// simultaneous traffic. (Per-message times can reorder; the aggregate
    /// and the makespan are what the paper's measurements depend on.)
    #[test]
    fn flow_model_tracks_packet_level(
        raw in prop::collection::vec(
            (0usize..16, 0usize..16, 100u64..8000, 0u64..200),
            1..12,
        )
    ) {
        use cm5_sim::packet::{simulate_flows, simulate_packets, PacketMessage};
        use cm5_sim::{SimDuration, SimTime};
        let msgs: Vec<PacketMessage> = raw
            .into_iter()
            .filter(|(a, b, _, _)| a != b)
            .map(|(src, dst, bytes, start_us)| PacketMessage {
                src,
                dst,
                bytes,
                start: SimTime::ZERO + SimDuration::from_micros(start_us),
            })
            .collect();
        prop_assume!(!msgs.is_empty());
        let tree = cm5_sim::topology::Topology::FatTree(FatTree::new(16));
        let params = MachineParams::cm5_1992();
        let pk = simulate_packets(&tree, &params, &msgs);
        let fl = simulate_flows(&tree, &params, &msgs);
        let pk_last = pk.iter().max().unwrap().as_nanos() as f64;
        let fl_last = fl.iter().max().unwrap().as_nanos() as f64;
        let err = (pk_last - fl_last).abs() / pk_last.max(fl_last);
        prop_assert!(err < 0.20, "makespan disagreement {err:.3}: packet {pk_last} flow {fl_last}");
    }
}

/// Topology properties over all pairs of a few machine sizes (exhaustive,
/// no sampling needed).
#[test]
fn routes_are_consistent_everywhere() {
    for n in [2usize, 4, 8, 32, 64, 256] {
        let tree = FatTree::new(n);
        for a in 0..n.min(40) {
            for b in 0..n.min(40) {
                if a == b {
                    continue;
                }
                let lca = tree.lca_level(a, b);
                assert_eq!(lca, tree.lca_level(b, a));
                assert!(lca >= 1 && lca <= tree.levels());
                let route = tree.route(a, b);
                assert_eq!(route.len() as u32, 2 * lca);
                // All link indices valid and unique.
                let mut sorted = route.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len() as u32, 2 * lca);
                for idx in route {
                    assert!(idx < tree.link_count());
                }
            }
        }
    }
}
