//! Property-based tests of the discrete-event engine: random but
//! *well-formed* communication programs must always complete, always
//! deterministically, with sane accounting — and random *ill-formed* ones
//! must be rejected as deadlocks, never hangs or panics.

use cm5_sim::{MachineParams, Op, OpProgram, SimError, Simulation};
use proptest::prelude::*;

/// A random matched communication script: a sequence of (src, dst, bytes)
/// messages, turned into per-node programs in a deadlock-free order (each
/// message appended to both endpoints in script order, receiver first
/// encounters its recv after all earlier ops — rendezvous-safe because the
/// global script order gives a consistent total order).
fn matched_programs(n: usize, msgs: &[(usize, usize, u64)]) -> Vec<OpProgram> {
    let mut programs: Vec<OpProgram> = vec![Vec::new(); n];
    for (k, &(src, dst, bytes)) in msgs.iter().enumerate() {
        programs[src].push(Op::Send {
            to: dst,
            bytes,
            tag: k as u32,
        });
        programs[dst].push(Op::Recv {
            from: src,
            tag: k as u32,
        });
    }
    programs
}

fn msgs_strategy(n: usize) -> impl Strategy<Value = Vec<(usize, usize, u64)>> {
    prop::collection::vec(
        (0..n, 0..n, 0u64..10_000).prop_filter("distinct", |(a, b, _)| a != b),
        1..30,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sequential-consistency-style liveness: any script where each node's
    /// local order embeds a single global order completes without deadlock.
    ///
    /// (Not every interleaving of rendezvous ops is deadlock-free, but this
    /// construction is: the first unmatched op in global order is always
    /// eventually reachable by both endpoints.)
    #[test]
    fn matched_scripts_complete(msgs in msgs_strategy(8)) {
        let programs = matched_programs(8, &msgs);
        let r = Simulation::new(8, MachineParams::cm5_1992()).run_ops(&programs);
        // Some interleavings genuinely deadlock under rendezvous (two nodes
        // whose next ops target each other in opposite order are fine — the
        // engine matches send/recv pairs — but A send→B while B send→A at
        // the head deadlocks). Accept either completion or a *diagnosed*
        // deadlock; never a panic or a hang.
        match r {
            Ok(report) => {
                prop_assert_eq!(report.messages, msgs.len() as u64);
                let payload: u64 = msgs.iter().map(|&(_, _, b)| b).sum();
                prop_assert_eq!(report.payload_bytes, payload);
            }
            Err(SimError::Deadlock { waiting, .. }) => {
                prop_assert!(!waiting.is_empty());
            }
            Err(other) => return Err(TestCaseError::fail(format!("unexpected: {other}"))),
        }
    }

    /// Determinism: identical inputs give bit-identical reports.
    #[test]
    fn runs_are_deterministic(msgs in msgs_strategy(8)) {
        let programs = matched_programs(8, &msgs);
        let sim = Simulation::new(8, MachineParams::cm5_1992());
        let a = sim.run_ops(&programs);
        let b = sim.run_ops(&programs);
        match (a, b) {
            (Ok(ra), Ok(rb)) => {
                prop_assert_eq!(ra.makespan, rb.makespan);
                prop_assert_eq!(ra.wire_bytes, rb.wire_bytes);
                for (x, y) in ra.nodes.iter().zip(rb.nodes.iter()) {
                    prop_assert_eq!(x.finished_at, y.finished_at);
                    prop_assert_eq!(x.blocked, y.blocked);
                    prop_assert_eq!(x.busy, y.busy);
                }
            }
            (Err(SimError::Deadlock { .. }), Err(SimError::Deadlock { .. })) => {}
            (x, y) => return Err(TestCaseError::fail(format!("diverged: {x:?} vs {y:?}"))),
        }
    }

    /// The makespan is bounded below by any node's local work and bounded
    /// above by fully-serialized execution.
    #[test]
    fn makespan_bounds(msgs in msgs_strategy(6)) {
        let programs = matched_programs(6, &msgs);
        let params = MachineParams::cm5_1992();
        if let Ok(report) = Simulation::new(6, params.clone()).run_ops(&programs) {
            // Lower bound: one message's minimum cost.
            let per_msg_floor = params.send_overhead.as_nanos();
            prop_assert!(report.makespan.as_nanos() >= per_msg_floor);
            // Upper bound: every message fully serialized at the guaranteed
            // floor bandwidth plus all overheads.
            let mut upper = 0u64;
            for &(_, _, bytes) in &msgs {
                let wire = params.wire_bytes(bytes) as f64;
                upper += params.send_overhead.as_nanos()
                    + params.recv_overhead.as_nanos()
                    + params.wire_latency.as_nanos()
                    + cm5_sim::SimDuration::from_rate(wire, params.upper_bandwidth)
                        .as_nanos()
                    + 1_000; // rounding slack
            }
            prop_assert!(
                report.makespan.as_nanos() <= upper,
                "makespan {} exceeds serial bound {upper}",
                report.makespan.as_nanos()
            );
        }
    }

    /// Eager mode is never slower than rendezvous for the same script
    /// (buffering only removes waiting).
    #[test]
    fn eager_never_slower(msgs in msgs_strategy(6)) {
        let programs = matched_programs(6, &msgs);
        let rendezvous = Simulation::new(6, MachineParams::cm5_1992()).run_ops(&programs);
        let mut params = MachineParams::cm5_1992();
        params.send_mode = cm5_sim::SendMode::Eager;
        let eager = Simulation::new(6, params).run_ops(&programs);
        if let (Ok(r), Ok(e)) = (rendezvous, eager) {
            prop_assert!(
                e.makespan.as_nanos() <= r.makespan.as_nanos() * 102 / 100,
                "eager {} vs rendezvous {}",
                e.makespan,
                r.makespan
            );
        }
    }

    /// Busy + blocked time never exceeds the node's finishing time.
    #[test]
    fn node_time_accounting(msgs in msgs_strategy(8)) {
        let programs = matched_programs(8, &msgs);
        if let Ok(report) =
            Simulation::new(8, MachineParams::cm5_1992()).run_ops(&programs)
        {
            for (i, node) in report.nodes.iter().enumerate() {
                let spent = node.busy.as_nanos() + node.blocked.as_nanos();
                prop_assert!(
                    spent <= node.finished_at.as_nanos() + 1,
                    "node {i}: busy+blocked {} > finished {}",
                    spent,
                    node.finished_at.as_nanos()
                );
            }
        }
    }
}
