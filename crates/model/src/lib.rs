//! # cm5-model — analytic cost models and the algorithm Advisor
//!
//! The paper's contribution is ultimately a *decision table*: which
//! complete-exchange / broadcast / irregular scheduler wins for which
//! machine size, message size and pattern density. The rest of this
//! workspace rediscovers that table by simulating every grid cell; this
//! crate computes it directly, in microseconds, from closed-form α/β/γ
//! cost models of each algorithm — the production path for a runtime
//! that must pick a schedule per request.
//!
//! Three layers:
//!
//! * [`stats`] — [`PatternStats`]: one O(n²) pass reducing an irregular
//!   [`cm5_core::Pattern`] to the aggregates the models need (density,
//!   mean entry size, max pair degree, nonempty XOR/BEX pairing
//!   classes). No scheduling, no simulation.
//! * [`cost`] — a [`CostModel`] per algorithm (LEX/PEX/REX/BEX,
//!   LIB/REB/system broadcast, LS/PS/BS/GS), parameterized by
//!   [`cm5_sim::MachineParams`] and the [`cm5_sim::FatTree`] shape:
//!   rendezvous serialization, packetized wire bytes, thinned-level
//!   link shares, REX's store-and-forward copies.
//! * [`advisor`] — [`Advisor::recommend`]: price all candidates, return
//!   the winner + runner-up + margin, memoized under a quantized
//!   [`advisor::DecisionKey`] so repeated queries are O(1).
//!
//! Fidelity is pinned by `cm5-bench`'s `report model` section, which
//! sweeps the paper's grids and scores model-predicted against
//! simulated winners (see EXPERIMENTS.md "Model validation").

#![forbid(unsafe_code)]

pub mod advisor;
pub mod cost;
pub mod stats;

pub use advisor::{Advisor, CacheOutcome, DecisionKey, Recommendation, ShardStats};
pub use cost::{predict, Algorithm, CostModel, Workload};
pub use stats::PatternStats;

/// Convenient glob import of the whole public surface.
pub mod prelude {
    pub use crate::advisor::{Advisor, CacheOutcome, DecisionKey, Recommendation, ShardStats};
    pub use crate::cost::{model_for, predict, Algorithm, CostModel, Workload};
    pub use crate::stats::PatternStats;
}
