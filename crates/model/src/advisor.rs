//! The runtime algorithm Advisor.
//!
//! `recommend` prices every candidate algorithm for a workload with the
//! closed-form models and returns the cheapest, plus the runner-up and
//! the predicted margin — what a serving stack would consult per
//! request before committing to a schedule.
//!
//! Repeated queries are O(1): recommendations are memoized under a
//! [`DecisionKey`] quantized from the workload (machine size, message
//! size in packets, density/occupancy buckets). To guarantee the cache
//! can never change an answer, **both** the cached and uncached paths
//! quantize first and predict from the key's representative workload —
//! two workloads that share a key are indistinguishable to the models
//! by construction.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Mutex;

use crate::cost::{self, Algorithm, Workload};
use crate::stats::PatternStats;
use cm5_sim::{FatTree, MachineParams, SimDuration};

/// Occupancy/density quantization: 1/1024 resolution keeps the bucket
/// error far below the models' own residuals.
const FRAC_BINS: f64 = 1024.0;

/// What the advisor returns: the pick, how confident, and the full
/// price list.
#[derive(Debug, Clone, PartialEq)]
pub struct Recommendation {
    /// The predicted-fastest algorithm.
    pub algorithm: Algorithm,
    /// Its predicted makespan.
    pub predicted: SimDuration,
    /// The second-fastest candidate, if more than one applied.
    pub runner_up: Option<Algorithm>,
    /// The runner-up's predicted makespan.
    pub runner_up_predicted: Option<SimDuration>,
    /// Relative margin `(runner_up − best) / best` (0.0 with no
    /// runner-up). Small margins mean the choice is a near-tie.
    pub margin: f64,
    /// Every applicable candidate with its prediction, fastest first.
    pub candidates: Vec<(Algorithm, SimDuration)>,
}

/// The memoization key: a workload quantized to the resolution the
/// cost models actually see.
///
/// Message sizes collapse to packet counts (lossless for every
/// bandwidth term — the wire moves whole 20-byte packets); fractions
/// (density, occupancy) collapse to 1/1024 bins; structural counts
/// (steps, degrees, pair counts) stay exact.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DecisionKey {
    kind: WorkloadKind,
    n: usize,
    /// Per-pair (exchange), total (broadcast) or mean-entry (irregular)
    /// message size, in packets. Zero only for a zero-byte workload.
    packets: u64,
    /// Irregular-only discriminators (zeroed otherwise).
    density_bin: u32,
    nonzero_pairs: u32,
    exchange_pairs: u32,
    oneway_pairs: u32,
    max_pair_degree: u32,
    /// `max(max_out_degree, max_in_degree)` — the only form the models
    /// consume.
    max_dir_degree: u32,
    ps_steps: u32,
    bs_steps: u32,
    ps_occ_bin: u32,
    bs_occ_bin: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum WorkloadKind {
    Exchange,
    Broadcast,
    Irregular,
}

impl DecisionKey {
    /// Quantize a workload.
    pub fn of(w: &Workload, params: &MachineParams) -> DecisionKey {
        let mut key = DecisionKey {
            kind: WorkloadKind::Exchange,
            n: w.nodes(),
            packets: 0,
            density_bin: 0,
            nonzero_pairs: 0,
            exchange_pairs: 0,
            oneway_pairs: 0,
            max_pair_degree: 0,
            max_dir_degree: 0,
            ps_steps: 0,
            bs_steps: 0,
            ps_occ_bin: 0,
            bs_occ_bin: 0,
        };
        match w {
            Workload::Exchange { bytes, .. } => {
                key.kind = WorkloadKind::Exchange;
                key.packets = params.packets(*bytes);
            }
            Workload::Broadcast { bytes, .. } => {
                key.kind = WorkloadKind::Broadcast;
                key.packets = params.packets(*bytes);
            }
            Workload::Irregular(s) => {
                key.kind = WorkloadKind::Irregular;
                key.packets = params.packets(s.avg_msg_bytes.ceil() as u64);
                key.density_bin = bin(s.density);
                key.nonzero_pairs = s.nonzero_pairs as u32;
                key.exchange_pairs = s.exchange_pairs as u32;
                key.oneway_pairs = s.oneway_pairs as u32;
                key.max_pair_degree = s.max_pair_degree as u32;
                key.max_dir_degree = s.max_out_degree.max(s.max_in_degree) as u32;
                key.ps_steps = s.ps_steps as u32;
                key.bs_steps = s.bs_steps as u32;
                key.ps_occ_bin = bin(s.ps_occupancy);
                key.bs_occ_bin = bin(s.bs_occupancy);
            }
        }
        key
    }

    /// The workload every member of this bucket is priced as.
    pub fn representative(&self, params: &MachineParams) -> Workload {
        let bytes = self.packets * params.packet_payload;
        match self.kind {
            WorkloadKind::Exchange => Workload::Exchange { n: self.n, bytes },
            WorkloadKind::Broadcast => Workload::Broadcast { n: self.n, bytes },
            WorkloadKind::Irregular => Workload::Irregular(PatternStats {
                n: self.n,
                nonzero_pairs: self.nonzero_pairs as usize,
                density: unbin(self.density_bin),
                avg_msg_bytes: bytes as f64,
                max_msg_bytes: bytes,
                total_bytes: bytes * self.nonzero_pairs as u64,
                exchange_pairs: self.exchange_pairs as usize,
                oneway_pairs: self.oneway_pairs as usize,
                max_out_degree: self.max_dir_degree as usize,
                max_in_degree: self.max_dir_degree as usize,
                max_pair_degree: self.max_pair_degree as usize,
                ps_steps: self.ps_steps as usize,
                ps_occupancy: unbin(self.ps_occ_bin),
                bs_steps: self.bs_steps as usize,
                bs_occupancy: unbin(self.bs_occ_bin),
                root_crossing_frac: 0.0,
            }),
        }
    }
}

fn bin(frac: f64) -> u32 {
    (frac.clamp(0.0, 1.0) * FRAC_BINS).round() as u32
}

fn unbin(b: u32) -> f64 {
    b as f64 / FRAC_BINS
}

/// Fingerprint of the machine configuration, so one advisor can serve
/// several parameter sets without cross-talk.
fn machine_fingerprint(params: &MachineParams, tree: &FatTree) -> u64 {
    let mut h = DefaultHasher::new();
    tree.nodes().hash(&mut h);
    for v in [
        params.leaf_bandwidth,
        params.software_bandwidth,
        params.level1_bandwidth,
        params.upper_bandwidth,
        params.system_bcast_bandwidth,
        params.memcpy_bandwidth,
    ] {
        v.to_bits().hash(&mut h);
    }
    for d in [
        params.send_overhead,
        params.recv_overhead,
        params.wire_latency,
        params.control_latency,
        params.system_bcast_overhead,
    ] {
        d.as_nanos().hash(&mut h);
    }
    (params.packet_payload, params.packet_wire).hash(&mut h);
    h.finish()
}

/// How one [`Advisor::recommend_traced`] call interacted with the cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheOutcome {
    /// Whether this query was served from the memo (see
    /// [`Advisor::recommend_traced`] for the concurrency caveat).
    pub hit: bool,
    /// Shard index the key routed to.
    pub shard: usize,
    /// Deterministic string form of the cache key (machine fingerprint +
    /// quantized decision key) — equal strings ⇔ equal cache entries.
    pub key: String,
}

/// Point-in-time statistics of one advisor cache shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStats {
    /// Distinct decisions memoized in this shard.
    pub entries: usize,
    /// Queries routed to this shard (hits + misses). Key→shard routing is
    /// a pure hash, so this count is deterministic for a given query
    /// stream regardless of which threads issued the queries.
    pub queries: u64,
}

/// One shard of the decision cache: the memo map plus its query counter,
/// behind a single mutex so a query touches exactly one lock.
#[derive(Debug, Default)]
struct Shard {
    map: HashMap<(u64, DecisionKey), Recommendation>,
    queries: u64,
}

/// Memoizing algorithm selector. Cheap to create; intended to live for
/// the duration of a run and be shared (`&self` methods, interior
/// locking).
///
/// The decision cache is split into [`Advisor::shard_count`] shards keyed
/// by the hash of `(machine fingerprint, DecisionKey)`, so concurrent
/// workers contend only when their queries land in the same shard — there
/// is no global lock on the hot path. Sharding is invisible to answers:
/// every shard runs the same quantize-then-predict computation, so
/// recommendations are bit-identical for any shard count (asserted by
/// `tests/advisor_props.rs`).
#[derive(Debug)]
pub struct Advisor {
    shards: Vec<Mutex<Shard>>,
}

impl Default for Advisor {
    fn default() -> Advisor {
        Advisor::new()
    }
}

impl Advisor {
    /// A fresh advisor with a single-shard decision cache.
    pub fn new() -> Advisor {
        Advisor::with_shards(1)
    }

    /// A fresh advisor whose decision cache is split across `shards`
    /// mutexes (`shards ≥ 1`). Use roughly 2–4× the number of concurrent
    /// worker threads to make lock contention negligible.
    pub fn with_shards(shards: usize) -> Advisor {
        assert!(shards >= 1, "advisor needs at least one cache shard");
        Advisor {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
        }
    }

    /// Number of cache shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Which shard a key routes to: a hash independent of the map's own
    /// (keys cluster by workload family in `DecisionKey`'s derived hash
    /// inputs, but `DefaultHasher` mixes well enough for routing).
    fn shard_of(&self, fp: u64, key: &DecisionKey) -> usize {
        let mut h = DefaultHasher::new();
        fp.hash(&mut h);
        key.hash(&mut h);
        (h.finish() % self.shards.len() as u64) as usize
    }

    /// Recommend an algorithm for `workload`, memoized.
    pub fn recommend(
        &self,
        workload: &Workload,
        params: &MachineParams,
        tree: &FatTree,
    ) -> Recommendation {
        self.recommend_traced(workload, params, tree).0
    }

    /// [`Advisor::recommend`] plus the cache outcome, for telemetry.
    ///
    /// The recommendation is bit-identical to the untraced form; the
    /// [`CacheOutcome`] reports which shard served the query, whether it
    /// hit, and the cache key's deterministic string form (note the hit
    /// flag itself is interleaving-dependent under concurrency — two
    /// threads racing on a cold key both see a miss — so exporters that
    /// need worker-count-independent output re-derive hit/miss from the
    /// key stream instead).
    pub fn recommend_traced(
        &self,
        workload: &Workload,
        params: &MachineParams,
        tree: &FatTree,
    ) -> (Recommendation, CacheOutcome) {
        let key = DecisionKey::of(workload, params);
        let fp = machine_fingerprint(params, tree);
        let idx = self.shard_of(fp, &key);
        let key_string = format!("{fp:016x}|{key:?}");
        let outcome = move |hit| CacheOutcome {
            hit,
            shard: idx,
            key: key_string,
        };
        {
            let mut shard = self.shards[idx].lock().expect("advisor cache poisoned");
            shard.queries += 1;
            if let Some(hit) = shard.map.get(&(fp, key.clone())) {
                return (hit.clone(), outcome(true));
            }
        }
        // Compute outside the lock: two threads racing on the same cold key
        // both run the identical pure computation and insert equal values,
        // so the cache contents stay deterministic.
        let rec = Self::recommend_uncached(workload, params, tree);
        let mut shard = self.shards[idx].lock().expect("advisor cache poisoned");
        shard.map.insert((fp, key), rec.clone());
        (rec, outcome(false))
    }

    /// The issue-facing convenience form: recommend a scheduler for an
    /// irregular pattern described by its statistics.
    pub fn recommend_pattern(
        &self,
        stats: &PatternStats,
        params: &MachineParams,
        tree: &FatTree,
    ) -> Recommendation {
        self.recommend(&Workload::Irregular(stats.clone()), params, tree)
    }

    /// The same computation with no cache involved. Both paths quantize
    /// the workload first, so this returns bit-identical results to
    /// [`Advisor::recommend`] — asserted by the determinism proptests.
    pub fn recommend_uncached(
        workload: &Workload,
        params: &MachineParams,
        tree: &FatTree,
    ) -> Recommendation {
        let key = DecisionKey::of(workload, params);
        let rep = key.representative(params);
        let mut candidates: Vec<(Algorithm, SimDuration)> = rep
            .candidates()
            .into_iter()
            .filter_map(|alg| cost::predict(alg, &rep, params, tree).map(|d| (alg, d)))
            .collect();
        assert!(
            !candidates.is_empty(),
            "no model applies to workload {workload:?}"
        );
        // Deterministic order: by predicted time, candidate order as
        // the tie-break (the candidate list itself is fixed).
        candidates.sort_by_key(|&(_, d)| d.as_nanos());
        let (algorithm, predicted) = candidates[0];
        let runner = candidates.get(1).copied();
        let margin = match runner {
            Some((_, d)) if predicted.as_nanos() > 0 => {
                (d.as_nanos() as f64 - predicted.as_nanos() as f64) / predicted.as_nanos() as f64
            }
            _ => 0.0,
        };
        Recommendation {
            algorithm,
            predicted,
            runner_up: runner.map(|(a, _)| a),
            runner_up_predicted: runner.map(|(_, d)| d),
            margin,
            candidates,
        }
    }

    /// Number of distinct decisions currently memoized (summed over
    /// shards).
    pub fn cache_len(&self) -> usize {
        self.shard_stats().iter().map(|s| s.entries).sum()
    }

    /// Total queries answered (hits + misses, summed over shards).
    pub fn cache_queries(&self) -> u64 {
        self.shard_stats().iter().map(|s| s.queries).sum()
    }

    /// Per-shard cache statistics, in shard order. Both fields are
    /// deterministic functions of the query multiset: entry counts because
    /// the key→shard routing is a pure hash, query counts because every
    /// query increments exactly its key's shard.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .map(|s| {
                let s = s.lock().expect("advisor cache poisoned");
                ShardStats {
                    entries: s.map.len(),
                    queries: s.queries,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm5_core::{ExchangeAlg, Pattern};

    fn m32() -> (MachineParams, FatTree) {
        (MachineParams::cm5_1992(), FatTree::new(32))
    }

    #[test]
    fn exchange_recommendations_match_the_decision_table() {
        let (p, t) = m32();
        let adv = Advisor::new();
        // 0 B on 32 nodes: REX (lg n steps of pure latency).
        let r = adv.recommend(&Workload::Exchange { n: 32, bytes: 0 }, &p, &t);
        assert_eq!(r.algorithm, Algorithm::Exchange(ExchangeAlg::Rex));
        // Large messages on 32 nodes: BEX.
        let r = adv.recommend(&Workload::Exchange { n: 32, bytes: 1920 }, &p, &t);
        assert_eq!(r.algorithm, Algorithm::Exchange(ExchangeAlg::Bex));
        assert_eq!(r.candidates.len(), 4);
        assert!(r.margin > 0.0);
    }

    #[test]
    fn cache_hits_return_identical_answers() {
        let (p, t) = m32();
        let adv = Advisor::new();
        let w = Workload::Exchange { n: 32, bytes: 512 };
        let first = adv.recommend(&w, &p, &t);
        assert_eq!(adv.cache_len(), 1);
        let second = adv.recommend(&w, &p, &t);
        assert_eq!(adv.cache_len(), 1, "second query must hit the cache");
        assert_eq!(first, second);
        let uncached = Advisor::recommend_uncached(&w, &p, &t);
        assert_eq!(first, uncached);
    }

    #[test]
    fn message_sizes_in_the_same_packet_bucket_share_a_decision() {
        let (p, t) = m32();
        let adv = Advisor::new();
        // 250 and 256 bytes are both 16 packets.
        let a = adv.recommend(&Workload::Exchange { n: 32, bytes: 250 }, &p, &t);
        let b = adv.recommend(&Workload::Exchange { n: 32, bytes: 256 }, &p, &t);
        assert_eq!(adv.cache_len(), 1);
        assert_eq!(a, b);
    }

    #[test]
    fn different_machines_do_not_share_cache_entries() {
        let (p, t) = m32();
        let adv = Advisor::new();
        let w = Workload::Broadcast { n: 32, bytes: 256 };
        let a = adv.recommend(&w, &p, &t);
        let mut p2 = p.clone();
        p2.system_bcast_bandwidth *= 10.0;
        let b = adv.recommend(&w, &p2, &t);
        assert_eq!(adv.cache_len(), 2);
        assert!(a.candidates != b.candidates);
    }

    #[test]
    fn sharded_caches_agree_with_the_single_shard() {
        let (p, t) = m32();
        for shards in [2usize, 3, 8, 64] {
            let baseline = Advisor::new();
            let adv = Advisor::with_shards(shards);
            assert_eq!(adv.shard_count(), shards);
            for bytes in [0u64, 64, 256, 1920, 4096] {
                let w = Workload::Exchange { n: 32, bytes };
                assert_eq!(adv.recommend(&w, &p, &t), baseline.recommend(&w, &p, &t));
                // Ask twice: the second answer must come from the cache.
                assert_eq!(adv.recommend(&w, &p, &t), baseline.recommend(&w, &p, &t));
            }
            let stats = adv.shard_stats();
            assert_eq!(stats.len(), shards);
            assert_eq!(
                stats.iter().map(|s| s.entries).sum::<usize>(),
                adv.cache_len()
            );
            assert_eq!(adv.cache_len(), baseline.cache_len());
            assert_eq!(adv.cache_queries(), baseline.cache_queries());
        }
    }

    #[test]
    #[should_panic(expected = "at least one cache shard")]
    fn zero_shards_is_rejected() {
        Advisor::with_shards(0);
    }

    #[test]
    fn pattern_recommendation_runs() {
        let (p, t) = m32();
        let adv = Advisor::new();
        let pat = Pattern::seeded_random(32, 0.25, 256, 7);
        let stats = PatternStats::of(&pat, &t);
        let r = adv.recommend_pattern(&stats, &p, &t);
        assert_eq!(r.candidates.len(), 4);
    }
}
