//! Cheap, simulation-free statistics of an irregular [`Pattern`].
//!
//! The Advisor must pick a scheduler in microseconds, so everything here
//! is a single O(n²) pass over the communication matrix — the same work
//! the inspector already does to build send lists. No schedule is built
//! and nothing is simulated; the per-class counts below are *pairing
//! statistics* (which XOR / BEX classes contain traffic), not schedules.

use cm5_core::prelude::bex_partner;
use cm5_core::Pattern;
use cm5_sim::FatTree;

/// Aggregate statistics of one communication pattern, as seen by the
/// cost models. Everything is derived from the matrix alone (plus the
/// fat-tree shape for root-crossing counts).
#[derive(Debug, Clone, PartialEq)]
pub struct PatternStats {
    /// Number of processors.
    pub n: usize,
    /// Ordered (src, dst) pairs with traffic.
    pub nonzero_pairs: usize,
    /// `nonzero_pairs / n(n-1)`.
    pub density: f64,
    /// Mean bytes over the nonzero entries (0.0 for an empty pattern).
    pub avg_msg_bytes: f64,
    /// Largest single entry.
    pub max_msg_bytes: u64,
    /// Sum of all entries.
    pub total_bytes: u64,
    /// Unordered pairs where both directions communicate (lowered as one
    /// Figure-2 exchange by the pairing schedulers).
    pub exchange_pairs: usize,
    /// Unordered pairs where exactly one direction communicates.
    pub oneway_pairs: usize,
    /// Max over processors of the number of messages it sends.
    pub max_out_degree: usize,
    /// Max over processors of the number of messages it receives.
    pub max_in_degree: usize,
    /// Max over processors of the number of *partners* it talks to in
    /// either direction — a lower bound on any pairing schedule's length,
    /// and the quantity greedy scheduling approaches (§4.3).
    pub max_pair_degree: usize,
    /// Nonempty XOR pairing classes — exactly the number of steps a PS
    /// schedule will have (`n` must be a power of two; otherwise `n`).
    pub ps_steps: usize,
    /// Mean fraction of processors active per nonempty XOR class.
    pub ps_occupancy: f64,
    /// Nonempty BEX pairing classes — exactly the number of steps a BS
    /// schedule will have.
    pub bs_steps: usize,
    /// Mean fraction of processors active per nonempty BEX class.
    pub bs_occupancy: f64,
    /// Fraction of the nonzero ordered pairs whose route crosses the
    /// fat-tree root (drives upper-link saturation).
    pub root_crossing_frac: f64,
}

impl PatternStats {
    /// Extract statistics from `pattern` on the machine shape `tree`.
    ///
    /// Panics if the tree is smaller than the pattern.
    pub fn of(pattern: &Pattern, tree: &FatTree) -> PatternStats {
        let n = pattern.n();
        assert!(
            tree.nodes() >= n,
            "tree has {} nodes but pattern needs {n}",
            tree.nodes()
        );
        let mut nonzero = 0usize;
        let mut total = 0u64;
        let mut max_bytes = 0u64;
        let mut crossing = 0usize;
        let mut exchange_pairs = 0usize;
        let mut oneway_pairs = 0usize;
        let mut out_deg = vec![0usize; n];
        let mut in_deg = vec![0usize; n];
        let mut pair_deg = vec![0usize; n];
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let b = pattern.get(i, j);
                if b > 0 {
                    nonzero += 1;
                    total += b;
                    max_bytes = max_bytes.max(b);
                    out_deg[i] += 1;
                    in_deg[j] += 1;
                    if tree.crosses_root(i, j) {
                        crossing += 1;
                    }
                }
                if i < j {
                    let ab = b > 0;
                    let ba = pattern.get(j, i) > 0;
                    if ab || ba {
                        pair_deg[i] += 1;
                        pair_deg[j] += 1;
                        if ab && ba {
                            exchange_pairs += 1;
                        } else {
                            oneway_pairs += 1;
                        }
                    }
                }
            }
        }

        // Pairing-class statistics. For a power-of-two machine these are
        // exact predictions of the PS / BS schedule lengths: class j is a
        // step iff some pair {i, partner(i, j)} carries traffic.
        let (ps_steps, ps_occupancy) = class_stats(pattern, |i, j| i ^ j);
        let (bs_steps, bs_occupancy) = class_stats(pattern, |i, j| bex_partner(i, j, n));

        PatternStats {
            n,
            nonzero_pairs: nonzero,
            density: pattern.density(),
            avg_msg_bytes: if nonzero == 0 {
                0.0
            } else {
                total as f64 / nonzero as f64
            },
            max_msg_bytes: max_bytes,
            total_bytes: total,
            exchange_pairs,
            oneway_pairs,
            max_out_degree: out_deg.iter().copied().max().unwrap_or(0),
            max_in_degree: in_deg.iter().copied().max().unwrap_or(0),
            max_pair_degree: pair_deg.iter().copied().max().unwrap_or(0),
            ps_steps,
            ps_occupancy,
            bs_steps,
            bs_occupancy,
            root_crossing_frac: if nonzero == 0 {
                0.0
            } else {
                crossing as f64 / nonzero as f64
            },
        }
    }
}

/// Count nonempty pairing classes and their mean node-occupancy for the
/// pairing family `partner(i, class)`.
fn class_stats(pattern: &Pattern, partner: impl Fn(usize, usize) -> usize) -> (usize, f64) {
    let n = pattern.n();
    if !n.is_power_of_two() || n < 2 {
        // The pairing schedulers require a power of two; report the
        // worst case so the models stay defined.
        return (n.saturating_sub(1), 1.0);
    }
    let mut steps = 0usize;
    let mut occupancy_sum = 0.0f64;
    for class in 1..n {
        let mut active_nodes = 0usize;
        for i in 0..n {
            let p = partner(i, class);
            if p != i && (pattern.get(i, p) > 0 || pattern.get(p, i) > 0) {
                active_nodes += 1;
            }
        }
        if active_nodes > 0 {
            steps += 1;
            occupancy_sum += active_nodes as f64 / n as f64;
        }
    }
    let occ = if steps == 0 {
        0.0
    } else {
        occupancy_sum / steps as f64
    };
    (steps, occ)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_exchange_stats() {
        let p = Pattern::complete_exchange(8, 64);
        let tree = FatTree::new(8);
        let s = PatternStats::of(&p, &tree);
        assert_eq!(s.n, 8);
        assert_eq!(s.nonzero_pairs, 56);
        assert!((s.density - 1.0).abs() < 1e-12);
        assert_eq!(s.exchange_pairs, 28);
        assert_eq!(s.oneway_pairs, 0);
        assert_eq!(s.max_pair_degree, 7);
        // Complete exchange fills every pairing class at full occupancy.
        assert_eq!(s.ps_steps, 7);
        assert_eq!(s.bs_steps, 7);
        assert!((s.ps_occupancy - 1.0).abs() < 1e-12);
        assert!((s.avg_msg_bytes - 64.0).abs() < 1e-12);
    }

    #[test]
    fn empty_pattern_is_all_zero() {
        let p = Pattern::new(8);
        let s = PatternStats::of(&p, &FatTree::new(8));
        assert_eq!(s.nonzero_pairs, 0);
        assert_eq!(s.ps_steps, 0);
        assert_eq!(s.max_pair_degree, 0);
        assert_eq!(s.avg_msg_bytes, 0.0);
    }

    #[test]
    fn paper_pattern_p_stats() {
        let p = Pattern::paper_pattern_p(256);
        let s = PatternStats::of(&p, &FatTree::new(8));
        assert!(s.nonzero_pairs > 0);
        assert!(s.density < 1.0);
        // GS finds a 6-step schedule for P (Table 10); the max pair
        // degree lower-bounds it.
        assert!(s.max_pair_degree <= 6);
    }
}
