//! Closed-form cost models for every scheduling algorithm in the repo.
//!
//! Each model mirrors the mechanism the flow-level engine charges for,
//! term by term:
//!
//! * **α (latency)** — rendezvous hand-shake per step. A Figure-2
//!   exchange serializes its two directions, so one exchange step costs
//!   `send_overhead + recv_overhead + 2·wire_latency` plus two
//!   transfers; a one-way step costs `max(overheads) + wire_latency`
//!   plus one transfer.
//! * **β (bandwidth)** — `wire_bytes(b)` (20-byte packets carrying 16
//!   payload bytes) over the bottleneck rate. Per-flow rate is
//!   `min(flow_cap, link_share)`; the share comes from the fat tree's
//!   thinned upper levels: a level-`l` up-link carries
//!   `4^l · per_node_bw(l)` shared by every flow leaving that subtree.
//! * **γ (copy)** — `memcpy_bandwidth` for REX's store-and-forward
//!   pack/unpack (four copies sit on the critical path per step: pack,
//!   unpack at the relay, re-pack, unpack at home).
//!
//! The handful of dimensionless constants in [`calib`] absorb what a
//! closed form cannot track event-by-event (pipelining overlap between
//! loosely-synchronized steps, drift-induced congestion); they are
//! calibrated once against the simulator and pinned by the `report
//! model` validation harness.

use crate::stats::PatternStats;
use cm5_core::prelude::bex_partner;
use cm5_core::{BroadcastAlg, ExchangeAlg, IrregularAlg};
use cm5_sim::{FatTree, MachineParams, SimDuration};

/// Calibration constants (dimensionless unless noted). Fitted against
/// `MachineParams::cm5_1992()` simulations; see EXPERIMENTS.md "Model
/// validation" for the residuals.
pub mod calib {
    /// LEX's receiver-serial steps overlap: while receiver `r` drains
    /// its tail of senders, receiver `r+1` (already served — senders are
    /// drained in index order) starts its own step. Fraction of the
    /// naive serial sum that remains on the critical path.
    pub const LEX_OVERLAP: f64 = 0.77;
    /// LS inherits LEX's structure but sparse steps overlap more; the
    /// overlap factor shrinks linearly with pattern density down to
    /// LEX's value at a complete pattern.
    pub const LS_OVERLAP_BASE: f64 = 0.29;
    /// Slope of the LS overlap factor in pattern density.
    pub const LS_OVERLAP_SLOPE: f64 = 0.53;
    /// Loosely-synchronized XOR-family steps drift: flows from adjacent
    /// steps co-occupy the upper links, inflating the instantaneous
    /// load over the per-step average by this factor (capped at the
    /// subtree population, so homogeneous all-cross steps like PEX's
    /// are unaffected).
    pub const XOR_DRIFT: f64 = 1.55;
    /// Per-active-step transfer multiplier for the pairwise/balanced
    /// irregular schedulers (one exchange per active step).
    pub const IRR_BETA: f64 = 1.0;
    /// Occupancy slack: the critical path tracks the *busiest* node,
    /// which is active more often than the mean.
    pub const IRR_OCC_SLACK: f64 = 0.08;
    /// Greedy overlaps sends and receives within a step (Table 10's
    /// step-3 overlap), so its schedule length tracks the larger
    /// *directed* degree, plus greedy-conflict slack that grows with
    /// density: `max(GS_SLACK_MIN, (density − GS_SLACK_KNEE) ·
    /// GS_SLACK_SLOPE · n)` extra steps.
    pub const GS_SLACK_MIN: f64 = 0.5;
    /// Density below which greedy schedules at its degree lower bound.
    pub const GS_SLACK_KNEE: f64 = 0.22;
    /// Per-node slope of greedy's conflict slack in density.
    pub const GS_SLACK_SLOPE: f64 = 0.375;
    /// Greedy's per-step rendezvous latency relative to a full
    /// Figure-2 exchange: below 1 at low density (send/recv overlap),
    /// above it as conflicts force serialization.
    pub const GS_ALPHA_BASE: f64 = 0.78;
    /// Density slope of greedy's per-step latency factor.
    pub const GS_ALPHA_SLOPE: f64 = 0.68;
    /// Cap on greedy's per-step latency factor.
    pub const GS_ALPHA_CAP: f64 = 1.1;
    /// Greedy's unstructured pairings ignore the tree: the transfer
    /// time per step rises with density (hot links + misaligned
    /// partners), as `GS_BETA_BASE + GS_BETA_SLOPE · density`
    /// exchanges per step.
    pub const GS_BETA_BASE: f64 = 0.9;
    /// Slope of greedy's per-step transfer count in density.
    pub const GS_BETA_SLOPE: f64 = 0.6;
    /// Cap on greedy's per-step transfer count.
    pub const GS_BETA_CAP: f64 = 1.18;
}

/// A schedulable algorithm, across all three workload families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Complete-exchange algorithm (§3).
    Exchange(ExchangeAlg),
    /// One-to-all broadcast algorithm (§3.6).
    Broadcast(BroadcastAlg),
    /// Irregular-pattern scheduler (§4).
    Irregular(IrregularAlg),
}

impl Algorithm {
    /// The paper's name for the algorithm.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Exchange(a) => a.name(),
            Algorithm::Broadcast(b) => match b {
                BroadcastAlg::Linear => "Linear (LIB)",
                BroadcastAlg::Recursive => "Recursive (REB)",
                BroadcastAlg::System => "System",
            },
            Algorithm::Irregular(a) => a.name(),
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What the caller wants to communicate; the advisor picks how.
#[derive(Debug, Clone, PartialEq)]
pub enum Workload {
    /// All-to-all personalized exchange of `bytes` per ordered pair.
    Exchange {
        /// Number of processors.
        n: usize,
        /// Bytes each processor sends to each other processor.
        bytes: u64,
    },
    /// One-to-all broadcast of `bytes`.
    Broadcast {
        /// Number of processors.
        n: usize,
        /// Message size in bytes.
        bytes: u64,
    },
    /// Runtime-discovered irregular pattern, reduced to its statistics.
    Irregular(PatternStats),
}

impl Workload {
    /// Number of processors involved.
    pub fn nodes(&self) -> usize {
        match self {
            Workload::Exchange { n, .. } | Workload::Broadcast { n, .. } => *n,
            Workload::Irregular(s) => s.n,
        }
    }

    /// The candidate algorithms for this workload family.
    pub fn candidates(&self) -> Vec<Algorithm> {
        match self {
            Workload::Exchange { .. } => ExchangeAlg::ALL
                .into_iter()
                .map(Algorithm::Exchange)
                .collect(),
            Workload::Broadcast { .. } => vec![
                Algorithm::Broadcast(BroadcastAlg::Linear),
                Algorithm::Broadcast(BroadcastAlg::Recursive),
                Algorithm::Broadcast(BroadcastAlg::System),
            ],
            Workload::Irregular(_) => IrregularAlg::ALL
                .into_iter()
                .map(Algorithm::Irregular)
                .collect(),
        }
    }
}

/// A closed-form predictor for one algorithm.
///
/// `predict` returns `None` when the model does not apply (wrong
/// workload family, or a shape the algorithm cannot schedule, e.g. a
/// non-power-of-two machine for the XOR family).
pub trait CostModel {
    /// Which algorithm this model prices.
    fn algorithm(&self) -> Algorithm;
    /// Predicted makespan of `workload` on the machine `(params, tree)`.
    fn predict(
        &self,
        workload: &Workload,
        params: &MachineParams,
        tree: &FatTree,
    ) -> Option<SimDuration>;
}

/// Predict the makespan of running `workload` with `alg` — the
/// function-style entry point over the trait objects.
pub fn predict(
    alg: Algorithm,
    workload: &Workload,
    params: &MachineParams,
    tree: &FatTree,
) -> Option<SimDuration> {
    model_for(alg).predict(workload, params, tree)
}

/// The model pricing `alg`.
pub fn model_for(alg: Algorithm) -> &'static dyn CostModel {
    match alg {
        Algorithm::Exchange(ExchangeAlg::Lex) => &LexModel,
        Algorithm::Exchange(ExchangeAlg::Pex) => &PexModel,
        Algorithm::Exchange(ExchangeAlg::Rex) => &RexModel,
        Algorithm::Exchange(ExchangeAlg::Bex) => &BexModel,
        Algorithm::Broadcast(BroadcastAlg::Linear) => &LibModel,
        Algorithm::Broadcast(BroadcastAlg::Recursive) => &RebModel,
        Algorithm::Broadcast(BroadcastAlg::System) => &SystemBcastModel,
        Algorithm::Irregular(IrregularAlg::Ls) => &LsModel,
        Algorithm::Irregular(IrregularAlg::Ps) => &PsModel,
        Algorithm::Irregular(IrregularAlg::Bs) => &BsModel,
        Algorithm::Irregular(IrregularAlg::Gs) => &GsModel,
    }
}

// ---------------------------------------------------------------------
// Shared closed-form terms.
// ---------------------------------------------------------------------

/// One transfer of `bytes` at `rate`, in seconds (wire bytes include
/// the 4-byte-per-packet header tax).
fn transfer(bytes: u64, rate: f64, p: &MachineParams) -> f64 {
    p.wire_bytes(bytes) as f64 / rate
}

/// Same, from an (average) byte count that is already fractional.
fn transfer_f(bytes: f64, rate: f64, p: &MachineParams) -> f64 {
    let packets = (bytes / p.packet_payload as f64).ceil().max(1.0);
    packets * p.packet_wire as f64 / rate
}

/// Rendezvous latency of one Figure-2 exchange step (its two directions
/// serialize): both overheads plus two wire latencies.
fn alpha_exchange(p: &MachineParams) -> f64 {
    p.send_overhead.as_secs_f64()
        + p.recv_overhead.as_secs_f64()
        + 2.0 * p.wire_latency.as_secs_f64()
}

/// Rendezvous latency of a one-way message (overheads overlap).
fn alpha_oneway(p: &MachineParams) -> f64 {
    p.send_overhead
        .as_secs_f64()
        .max(p.recv_overhead.as_secs_f64())
        + p.wire_latency.as_secs_f64()
}

/// Per-flow rate when *every* node in each level-`lca-1` subtree sends
/// out of it at once (a homogeneous full-exchange step at XOR distance
/// with that lca): the thinned per-node bandwidth at the highest level
/// crossed, capped by the per-flow software limit.
fn full_step_rate(lca: u32, p: &MachineParams) -> f64 {
    p.flow_cap().min(p.level_bandwidth(lca))
}

fn secs(d: f64) -> SimDuration {
    SimDuration::from_secs_f64(d.max(0.0))
}

// ---------------------------------------------------------------------
// Complete exchange (§3).
// ---------------------------------------------------------------------

/// Linear exchange: n receiver-serial steps (§3.2).
pub struct LexModel;
/// Pairwise exchange: n−1 XOR steps (§3.3).
pub struct PexModel;
/// Recursive exchange: lg n store-and-forward steps (§3.5).
pub struct RexModel;
/// Balanced exchange: n−1 rotated-XOR steps (§3.4).
pub struct BexModel;

impl CostModel for LexModel {
    fn algorithm(&self) -> Algorithm {
        Algorithm::Exchange(ExchangeAlg::Lex)
    }

    fn predict(&self, w: &Workload, p: &MachineParams, _t: &FatTree) -> Option<SimDuration> {
        let Workload::Exchange { n, bytes } = *w else {
            return None;
        };
        // Every one of the n(n−1) messages lands on some receiver's
        // serial critical path: recv_overhead + transfer + wire_latency
        // each, discounted by the step-overlap factor.
        let per_msg = p.recv_overhead.as_secs_f64()
            + p.wire_latency.as_secs_f64()
            + transfer(bytes, p.flow_cap(), p);
        Some(secs((n * (n - 1)) as f64 * per_msg * calib::LEX_OVERLAP))
    }
}

/// Per-node serial cost of an XOR-family schedule (PEX / BEX), exact in
/// the pairing: for every step, per-level link loads decide each pair's
/// bottleneck share; each node then pays one serialized exchange.
///
/// The makespan is the maximum over nodes of their serial sums — steps
/// are only loosely synchronized, so a node's time is dominated by its
/// own rendezvous chain, with [`calib::XOR_DRIFT`] inflating average
/// link loads to account for adjacent-step overlap.
fn xor_family_cost(
    n: usize,
    bytes: u64,
    partner_of: impl Fn(usize, usize) -> usize,
    p: &MachineParams,
    tree: &FatTree,
) -> f64 {
    let ax = alpha_exchange(p);
    let levels = tree.levels();
    let mut node_time = vec![0.0f64; n];
    // Reused per step: flows leaving each level-l group.
    for j in 1..n {
        let partners: Vec<usize> = (0..n).map(|i| partner_of(i, j)).collect();
        // Load on the up-link above each group at link level l
        // (groups of 4^(l+1) nodes feed the level-(l+1) switch; the
        // relevant shared links are those with thinned bandwidth).
        let mut loads: Vec<Vec<f64>> = (1..levels).map(|l| vec![0.0; tree.groups_at(l)]).collect();
        for i in 0..n {
            let q = partners[i];
            if q == i {
                continue;
            }
            let lca = tree.lca_level(i, q);
            for l in 1..lca {
                loads[(l - 1) as usize][tree.group_of(i, l)] += 1.0;
            }
        }
        for i in 0..n {
            let q = partners[i];
            if q == i {
                continue;
            }
            let lca = tree.lca_level(i, q);
            let mut rate = p.flow_cap();
            for l in 1..lca {
                let group = tree.group_of(i, l);
                let size = tree.group_size(l, group) as f64;
                // Drift-inflated load, capped at the subtree population.
                let load = (loads[(l - 1) as usize][group] * calib::XOR_DRIFT).min(size);
                let capacity = size * level_link_bw(l, p);
                rate = rate.min(capacity / load.max(1.0));
            }
            node_time[i] += ax + 2.0 * transfer(bytes, rate, p);
        }
    }
    node_time.into_iter().fold(0.0, f64::max)
}

/// Per-node bandwidth of the up-link above a level-`l` group.
fn level_link_bw(l: u32, p: &MachineParams) -> f64 {
    match l {
        0 => p.leaf_bandwidth,
        1 => p.level1_bandwidth,
        _ => p.upper_bandwidth,
    }
}

impl CostModel for PexModel {
    fn algorithm(&self) -> Algorithm {
        Algorithm::Exchange(ExchangeAlg::Pex)
    }

    fn predict(&self, w: &Workload, p: &MachineParams, tree: &FatTree) -> Option<SimDuration> {
        let Workload::Exchange { n, bytes } = *w else {
            return None;
        };
        if !n.is_power_of_two() || n < 2 || tree.nodes() < n {
            return None;
        }
        Some(secs(xor_family_cost(n, bytes, |i, j| i ^ j, p, tree)))
    }
}

impl CostModel for BexModel {
    fn algorithm(&self) -> Algorithm {
        Algorithm::Exchange(ExchangeAlg::Bex)
    }

    fn predict(&self, w: &Workload, p: &MachineParams, tree: &FatTree) -> Option<SimDuration> {
        let Workload::Exchange { n, bytes } = *w else {
            return None;
        };
        if !n.is_power_of_two() || n < 2 || tree.nodes() < n {
            return None;
        }
        Some(secs(xor_family_cost(
            n,
            bytes,
            |i, j| bex_partner(i, j, n),
            p,
            tree,
        )))
    }
}

impl CostModel for RexModel {
    fn algorithm(&self) -> Algorithm {
        Algorithm::Exchange(ExchangeAlg::Rex)
    }

    fn predict(&self, w: &Workload, p: &MachineParams, tree: &FatTree) -> Option<SimDuration> {
        let Workload::Exchange { n, bytes } = *w else {
            return None;
        };
        if !n.is_power_of_two() || n < 2 || tree.nodes() < n {
            return None;
        }
        // lg n steps; each moves the n/2 not-yet-delivered blocks in one
        // message, with four pack/unpack copies on the critical path
        // (pack → relay unpack + re-pack → home unpack).
        let m = bytes * (n as u64) / 2;
        let steps = n.trailing_zeros();
        let ax = alpha_exchange(p);
        let copy = 4.0 * m as f64 / p.memcpy_bandwidth;
        let mut total = 0.0;
        for k in 0..steps {
            let dist = 1usize << k;
            let lca = tree.lca_level(0, dist);
            let rate = full_step_rate(lca, p);
            total += ax + copy + 2.0 * transfer(m, rate, p);
        }
        Some(secs(total))
    }
}

// ---------------------------------------------------------------------
// Broadcast (§3.6).
// ---------------------------------------------------------------------

/// Linear broadcast: root sends n−1 rendezvous messages serially.
pub struct LibModel;
/// Recursive (doubling) broadcast: lg n rounds of disjoint pairs.
pub struct RebModel;
/// CMMD system broadcast: whole-partition collective at a fixed rate.
pub struct SystemBcastModel;

impl CostModel for LibModel {
    fn algorithm(&self) -> Algorithm {
        Algorithm::Broadcast(BroadcastAlg::Linear)
    }

    fn predict(&self, w: &Workload, p: &MachineParams, _t: &FatTree) -> Option<SimDuration> {
        let Workload::Broadcast { n, bytes } = *w else {
            return None;
        };
        let per = p.send_overhead.as_secs_f64() + transfer(bytes, p.flow_cap(), p);
        Some(secs((n - 1) as f64 * per + p.wire_latency.as_secs_f64()))
    }
}

impl CostModel for RebModel {
    fn algorithm(&self) -> Algorithm {
        Algorithm::Broadcast(BroadcastAlg::Recursive)
    }

    fn predict(&self, w: &Workload, p: &MachineParams, _t: &FatTree) -> Option<SimDuration> {
        let Workload::Broadcast { n, bytes } = *w else {
            return None;
        };
        // ceil(lg n) rounds; the informed set doubles, flows are
        // pairwise disjoint so nothing saturates.
        let rounds = (n as f64).log2().ceil();
        let per = alpha_oneway(p) + transfer(bytes, p.flow_cap(), p);
        Some(secs(rounds * per))
    }
}

impl CostModel for SystemBcastModel {
    fn algorithm(&self) -> Algorithm {
        Algorithm::Broadcast(BroadcastAlg::System)
    }

    fn predict(&self, w: &Workload, p: &MachineParams, _t: &FatTree) -> Option<SimDuration> {
        let Workload::Broadcast { bytes, .. } = *w else {
            return None;
        };
        Some(secs(
            p.control_latency.as_secs_f64()
                + p.system_bcast_overhead.as_secs_f64()
                + p.wire_bytes(bytes) as f64 / p.system_bcast_bandwidth,
        ))
    }
}

// ---------------------------------------------------------------------
// Irregular schedulers (§4), priced from PatternStats.
// ---------------------------------------------------------------------

/// Linear scheduling: LS keeps LEX's receiver-serial shape on the
/// pattern's nonzero entries only.
pub struct LsModel;
/// Pairwise scheduling on XOR classes.
pub struct PsModel;
/// Balanced scheduling on BEX classes.
pub struct BsModel;
/// Greedy scheduling (Figure 12).
pub struct GsModel;

impl CostModel for LsModel {
    fn algorithm(&self) -> Algorithm {
        Algorithm::Irregular(IrregularAlg::Ls)
    }

    fn predict(&self, w: &Workload, p: &MachineParams, _t: &FatTree) -> Option<SimDuration> {
        let Workload::Irregular(s) = w else {
            return None;
        };
        let per_msg = p.recv_overhead.as_secs_f64()
            + p.wire_latency.as_secs_f64()
            + transfer_f(s.avg_msg_bytes, p.flow_cap(), p);
        let overlap =
            (calib::LS_OVERLAP_BASE + calib::LS_OVERLAP_SLOPE * s.density).min(calib::LEX_OVERLAP);
        Some(secs(s.nonzero_pairs as f64 * per_msg * overlap))
    }
}

/// Shared PS/BS shape: `steps` loosely-synchronized pairing steps; the
/// critical node is active in an `occupancy (+ slack)` fraction of them
/// and pays one (mis-alignment-inflated) exchange each time.
fn pairing_cost(steps: usize, occupancy: f64, s: &PatternStats, p: &MachineParams) -> f64 {
    let q = (occupancy + calib::IRR_OCC_SLACK).min(1.0);
    let per_step = q
        * (alpha_exchange(p)
            + 2.0 * calib::IRR_BETA * transfer_f(s.avg_msg_bytes, p.flow_cap(), p));
    steps as f64 * per_step
}

impl CostModel for PsModel {
    fn algorithm(&self) -> Algorithm {
        Algorithm::Irregular(IrregularAlg::Ps)
    }

    fn predict(&self, w: &Workload, p: &MachineParams, _t: &FatTree) -> Option<SimDuration> {
        let Workload::Irregular(s) = w else {
            return None;
        };
        Some(secs(pairing_cost(s.ps_steps, s.ps_occupancy, s, p)))
    }
}

impl CostModel for BsModel {
    fn algorithm(&self) -> Algorithm {
        Algorithm::Irregular(IrregularAlg::Bs)
    }

    fn predict(&self, w: &Workload, p: &MachineParams, _t: &FatTree) -> Option<SimDuration> {
        let Workload::Irregular(s) = w else {
            return None;
        };
        Some(secs(pairing_cost(s.bs_steps, s.bs_occupancy, s, p)))
    }
}

impl CostModel for GsModel {
    fn algorithm(&self) -> Algorithm {
        Algorithm::Irregular(IrregularAlg::Gs)
    }

    fn predict(&self, w: &Workload, p: &MachineParams, _t: &FatTree) -> Option<SimDuration> {
        let Workload::Irregular(s) = w else {
            return None;
        };
        if s.nonzero_pairs == 0 {
            return Some(SimDuration::ZERO);
        }
        // Greedy overlaps a node's send and receive within one step, so
        // its length tracks the larger directed degree plus a conflict
        // slack that grows with density; per step the critical node pays
        // a (density-scaled) fraction of a Figure-2 exchange.
        let slack = calib::GS_SLACK_MIN
            .max((s.density - calib::GS_SLACK_KNEE) * calib::GS_SLACK_SLOPE * s.n as f64);
        let steps = s.max_out_degree.max(s.max_in_degree) as f64 + slack;
        let alpha =
            calib::GS_ALPHA_CAP.min(calib::GS_ALPHA_BASE + calib::GS_ALPHA_SLOPE * s.density);
        let beta = calib::GS_BETA_CAP.min(calib::GS_BETA_BASE + calib::GS_BETA_SLOPE * s.density);
        let per_step =
            alpha * alpha_exchange(p) + 2.0 * beta * transfer_f(s.avg_msg_bytes, p.flow_cap(), p);
        Some(secs(steps * per_step))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m32() -> (MachineParams, FatTree) {
        (MachineParams::cm5_1992(), FatTree::new(32))
    }

    #[test]
    fn exchange_models_match_known_simulated_cells() {
        // Fig 5 measured reference points (ms), from EXPERIMENTS.md.
        let (p, t) = m32();
        let cases: &[(ExchangeAlg, u64, f64)] = &[
            (ExchangeAlg::Lex, 0, 38.2),
            (ExchangeAlg::Lex, 1920, 220.8),
            (ExchangeAlg::Pex, 0, 3.10),
            (ExchangeAlg::Pex, 1920, 25.2),
            (ExchangeAlg::Rex, 0, 0.50),
            (ExchangeAlg::Rex, 1920, 71.1),
            (ExchangeAlg::Bex, 256, 5.45),
            (ExchangeAlg::Bex, 1920, 23.4),
        ];
        for &(alg, bytes, sim_ms) in cases {
            let w = Workload::Exchange { n: 32, bytes };
            let pred = predict(Algorithm::Exchange(alg), &w, &p, &t)
                .unwrap()
                .as_millis_f64();
            let err = (pred - sim_ms).abs() / sim_ms;
            assert!(
                err < 0.10,
                "{}@{bytes}B: predicted {pred:.2} ms vs simulated {sim_ms} ms ({:.0}% off)",
                alg.name(),
                err * 100.0
            );
        }
    }

    #[test]
    fn broadcast_models_match_known_simulated_cells() {
        let (p, t) = m32();
        let cases: &[(BroadcastAlg, u64, f64)] = &[
            (BroadcastAlg::Linear, 0, 1.31),
            (BroadcastAlg::Linear, 16384, 64.7),
            (BroadcastAlg::Recursive, 256, 0.40),
            (BroadcastAlg::Recursive, 16384, 10.5),
            (BroadcastAlg::System, 0, 0.17),
            (BroadcastAlg::System, 4096, 4.42),
        ];
        for &(alg, bytes, sim_ms) in cases {
            let w = Workload::Broadcast { n: 32, bytes };
            let pred = predict(Algorithm::Broadcast(alg), &w, &p, &t)
                .unwrap()
                .as_millis_f64();
            let err = (pred - sim_ms).abs() / sim_ms;
            assert!(
                err < 0.10,
                "{alg:?}@{bytes}B: predicted {pred:.2} ms vs simulated {sim_ms} ms"
            );
        }
    }

    #[test]
    fn models_reject_wrong_workload_family() {
        let (p, t) = m32();
        let bw = Workload::Broadcast { n: 32, bytes: 64 };
        assert!(predict(Algorithm::Exchange(ExchangeAlg::Pex), &bw, &p, &t).is_none());
        let ex = Workload::Exchange { n: 32, bytes: 64 };
        assert!(predict(Algorithm::Broadcast(BroadcastAlg::System), &ex, &p, &t).is_none());
    }

    #[test]
    fn xor_family_rejects_non_power_of_two() {
        let p = MachineParams::cm5_1992();
        let t = FatTree::new(48);
        let w = Workload::Exchange { n: 48, bytes: 64 };
        assert!(predict(Algorithm::Exchange(ExchangeAlg::Pex), &w, &p, &t).is_none());
        assert!(predict(Algorithm::Exchange(ExchangeAlg::Lex), &w, &p, &t).is_some());
    }
}
