//! Property-based tests of the scheduling algorithms: coverage, step
//! bounds, pairing structure, and lowering consistency over random inputs.

use cm5_core::prelude::*;
use cm5_sim::Op;
use proptest::prelude::*;

/// Random power-of-two node count 4..=64.
fn pow2_n() -> impl Strategy<Value = usize> {
    (2u32..=6).prop_map(|k| 1usize << k)
}

/// Random pattern over `n` nodes with entry probability `p` (scaled 0..100).
fn random_pattern(n: usize, fill: &[u8]) -> Pattern {
    let mut pat = Pattern::new(n);
    let mut k = 0usize;
    for i in 0..n {
        for j in 0..n {
            if i != j {
                let v = fill[k % fill.len()];
                k += 1;
                if v.is_multiple_of(4) {
                    pat.set(i, j, 1 + (v as u64) * 13);
                }
            }
        }
    }
    pat
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The regular algorithms cover complete exchange exactly at any
    /// power-of-two size and message size.
    #[test]
    fn regular_algorithms_cover(n in pow2_n(), bytes in 0u64..5000) {
        let pattern = Pattern::complete_exchange(n, bytes);
        for alg in [ExchangeAlg::Lex, ExchangeAlg::Pex, ExchangeAlg::Bex] {
            let s = alg.schedule(n, bytes);
            prop_assert!(s.check_nodes().is_ok());
            prop_assert!(s.check_coverage(&pattern).is_ok(), "{}", alg.name());
        }
        // REX is store-and-forward: validated by step structure instead.
        let r = rex(n, bytes);
        prop_assert_eq!(r.num_steps(), n.trailing_zeros() as usize);
        prop_assert!(r.check_pairwise_disjoint().is_ok());
    }

    /// Step-count bounds: PEX/BEX exactly N−1; LEX exactly N; GS at most
    /// 2(N−1) (each iteration retires at least one op of the busiest node).
    #[test]
    fn step_count_bounds(n in pow2_n(), fill in prop::collection::vec(any::<u8>(), 64..256)) {
        prop_assert_eq!(pex(n, 1).num_steps(), n - 1);
        prop_assert_eq!(bex(n, 1).num_steps(), n - 1);
        prop_assert_eq!(lex(n, 1).num_steps(), n);
        let pattern = random_pattern(n, &fill);
        if pattern.nonzero_pairs() > 0 {
            let g = gs(&pattern);
            prop_assert!(g.num_steps() <= 2 * (n - 1) + 2, "gs steps {}", g.num_steps());
            prop_assert!(g.check_coverage(&pattern).is_ok());
        }
    }

    /// PS/BS never use more steps than their regular parents, and drop to
    /// zero steps for the empty pattern.
    #[test]
    fn irregular_step_counts(n in pow2_n(), fill in prop::collection::vec(any::<u8>(), 64..256)) {
        let pattern = random_pattern(n, &fill);
        prop_assert!(ps(&pattern).num_steps() < n);
        prop_assert!(bs(&pattern).num_steps() < n);
        let empty = Pattern::new(n);
        prop_assert_eq!(ps(&empty).num_steps(), 0);
        prop_assert_eq!(bs(&empty).num_steps(), 0);
        prop_assert_eq!(gs(&empty).num_steps(), 0);
        prop_assert_eq!(ls(&empty).num_steps(), 0);
    }

    /// Lowering conserves messages: sends == recvs == schedule ops
    /// (counting exchanges twice), and memcpys appear only for REX.
    #[test]
    fn lowering_conserves_messages(n in pow2_n(), bytes in 1u64..2048) {
        for alg in ExchangeAlg::ALL {
            let schedule = alg.schedule(n, bytes);
            let programs = lower(&schedule);
            let sends: usize = programs
                .iter()
                .flatten()
                .filter(|op| matches!(op, Op::Send { .. }))
                .count();
            let recvs: usize = programs
                .iter()
                .flatten()
                .filter(|op| matches!(op, Op::Recv { .. } | Op::RecvAny { .. }))
                .count();
            prop_assert_eq!(sends, recvs, "{}", alg.name());
            let memcpys: usize = programs
                .iter()
                .flatten()
                .filter(|op| matches!(op, Op::Memcpy { .. }))
                .count();
            if matches!(alg, ExchangeAlg::Rex) {
                prop_assert_eq!(memcpys, 2 * sends, "{}", alg.name());
            } else {
                prop_assert_eq!(memcpys, 0, "{}", alg.name());
            }
        }
    }

    /// BEX is a relabelled PEX: per step, the *multiset* of XOR distances of
    /// virtual numbers equals PEX's pairing distance.
    #[test]
    fn bex_is_virtual_pex(n in pow2_n()) {
        for j in 1..n {
            for me in 0..n {
                let partner = bex_partner(me, j, n);
                let v_me = (me + 1) % n;
                let v_p = (partner + 1) % n;
                prop_assert_eq!(v_me ^ v_p, j, "n={} j={} me={}", n, j, me);
            }
        }
    }

    /// Broadcast schedules reach everyone exactly once from any root.
    #[test]
    fn broadcasts_reach_all(n in pow2_n(), root_pick in any::<u16>()) {
        let root = root_pick as usize % n;
        for schedule in [lib_linear(n, root, 100), reb(n, root, 100)] {
            let mut informed = vec![false; n];
            informed[root] = true;
            for step in schedule.steps() {
                for op in &step.ops {
                    let (from, to) = op.endpoints();
                    prop_assert!(informed[from]);
                    prop_assert!(!informed[to]);
                    informed[to] = true;
                }
            }
            prop_assert!(informed.iter().all(|&i| i));
        }
    }

    /// Pattern totals survive scheduling: every scheduler moves exactly
    /// `pattern.total_bytes()`.
    #[test]
    fn schedulers_conserve_bytes(fill in prop::collection::vec(any::<u8>(), 64..512)) {
        let pattern = random_pattern(16, &fill);
        for alg in IrregularAlg::ALL {
            let s = alg.schedule(&pattern);
            prop_assert_eq!(s.total_bytes(), pattern.total_bytes(), "{}", alg.name());
        }
    }
}
