//! Schedule post-optimization — the natural next step after §4.5.
//!
//! The paper's greedy scheduler minimizes *steps*; its balanced scheduler
//! spreads *root crossings*; nothing does both. [`balance_crossings`] is
//! the obvious hybrid: take any pairwise-disjoint schedule and migrate
//! operations between steps — preserving coverage and disjointness — so
//! the fat-tree root crossings even out across steps. On dense patterns
//! this recovers most of BS's contention advantage without giving up the
//! source schedule's step count.

use cm5_sim::FatTree;

use crate::schedule::{CommOp, Schedule, Step};

/// Rebalance a pairwise-disjoint schedule so that per-step root crossings
/// even out. The result has the same ops (coverage-identical), the same
/// number of steps, and stays pairwise-disjoint; only the assignment of
/// ops to steps changes. Panics if the input is not pairwise-disjoint
/// (LS/GS schedules deliberately are not — see their module docs).
pub fn balance_crossings(schedule: &Schedule, tree: &FatTree) -> Schedule {
    schedule
        .check_pairwise_disjoint()
        .expect("balance_crossings requires a pairwise-disjoint schedule");
    let n = schedule.n();
    let steps = schedule.num_steps();
    if steps <= 1 {
        return schedule.clone();
    }
    // Mutable working state.
    let mut ops_by_step: Vec<Vec<CommOp>> =
        schedule.steps().iter().map(|s| s.ops.clone()).collect();
    let mut busy: Vec<Vec<bool>> = ops_by_step
        .iter()
        .map(|ops| {
            let mut b = vec![false; n];
            for op in ops {
                let (x, y) = op.endpoints();
                b[x] = true;
                b[y] = true;
            }
            b
        })
        .collect();
    let crosses = |op: &CommOp| {
        let (a, b) = op.endpoints();
        tree.crosses_root(a, b)
    };
    let mut crossings: Vec<usize> = ops_by_step
        .iter()
        .map(|ops| ops.iter().filter(|op| crosses(op)).count())
        .collect();

    // Greedy passes: take a crossing op out of the heaviest step and park
    // it in the lightest step where both endpoints are free. Stop when no
    // profitable move exists (max crossings can no longer drop).
    loop {
        let (heavy, &hmax) = crossings
            .iter()
            .enumerate()
            .max_by_key(|&(i, &c)| (c, std::cmp::Reverse(i)))
            .expect("at least one step");
        let mut best_move: Option<(usize, usize)> = None; // (op idx, to step)
        'search: for (oi, op) in ops_by_step[heavy].iter().enumerate() {
            if !crosses(op) {
                continue;
            }
            let (a, b) = op.endpoints();
            // Candidate steps from lightest crossings upward.
            let mut order: Vec<usize> = (0..steps).filter(|&s| s != heavy).collect();
            order.sort_unstable_by_key(|&s| (crossings[s], s));
            for &to in &order {
                if crossings[to] + 1 >= hmax {
                    break; // no step light enough to make the move profitable
                }
                if !busy[to][a] && !busy[to][b] {
                    best_move = Some((oi, to));
                    break 'search;
                }
            }
        }
        let Some((oi, to)) = best_move else {
            break;
        };
        let op = ops_by_step[heavy].remove(oi);
        let (a, b) = op.endpoints();
        busy[heavy][a] = false;
        busy[heavy][b] = false;
        crossings[heavy] -= 1;
        busy[to][a] = true;
        busy[to][b] = true;
        crossings[to] += 1;
        ops_by_step[to].push(op);
    }

    let mut out = Schedule::new(n);
    out.store_and_forward = schedule.store_and_forward;
    for ops in ops_by_step {
        out.push_step_nonempty(Step { ops });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::run_schedule;
    use crate::irregular::{bs, ps};
    use crate::pattern::Pattern;
    use crate::regular::pex;
    use cm5_sim::MachineParams;

    #[test]
    fn preserves_coverage_and_disjointness() {
        let pattern = Pattern::seeded_random(32, 0.6, 512, 3);
        let tree = FatTree::new(32);
        let original = ps(&pattern);
        let optimized = balance_crossings(&original, &tree);
        optimized.check_pairwise_disjoint().unwrap();
        optimized.check_coverage(&pattern).unwrap();
        assert!(optimized.num_steps() <= original.num_steps());
    }

    #[test]
    fn reduces_peak_crossings_of_dense_ps() {
        // A half-dense pattern: PS inherits PEX's clumped global steps,
        // and the empty pair slots give the optimizer room to migrate.
        let pattern = Pattern::seeded_random(32, 0.5, 256, 17);
        let tree = FatTree::new(32);
        let original = ps(&pattern);
        let optimized = balance_crossings(&original, &tree);
        let peak_before = *original
            .root_crossings_per_step(&tree)
            .iter()
            .max()
            .unwrap();
        let peak_after = *optimized
            .root_crossings_per_step(&tree)
            .iter()
            .max()
            .unwrap();
        assert!(
            peak_after < peak_before,
            "peak {peak_before} -> {peak_after}"
        );
        optimized.check_coverage(&pattern).unwrap();
    }

    #[test]
    fn full_matchings_are_a_fixed_point() {
        // PEX's steps are perfect matchings: no free slot exists, so the
        // optimizer must return the schedule unchanged (coverage-wise) —
        // rebalancing complete exchange needs BEX's global renumbering,
        // not op migration.
        let tree = FatTree::new(16);
        let original = pex(16, 64);
        let optimized = balance_crossings(&original, &tree);
        assert_eq!(
            original.root_crossings_per_step(&tree),
            optimized.root_crossings_per_step(&tree)
        );
    }

    #[test]
    fn improves_dense_pairwise_makespan() {
        // At 75 % density PS loses to BS on contention; the optimizer
        // should claw back a measurable share without changing coverage.
        let pattern = Pattern::seeded_random(32, 0.75, 1024, 9);
        let tree = FatTree::new(32);
        let params = MachineParams::cm5_1992();
        let base = run_schedule(&ps(&pattern), &params).unwrap().makespan;
        let opt_schedule = balance_crossings(&ps(&pattern), &tree);
        let opt = run_schedule(&opt_schedule, &params).unwrap().makespan;
        assert!(
            opt.as_nanos() <= base.as_nanos(),
            "optimizer must not hurt: {base} -> {opt}"
        );
        // And it should land in BS's neighbourhood (within 15 %).
        let bs_t = run_schedule(&bs(&pattern), &params).unwrap().makespan;
        assert!(
            opt.as_nanos() as f64 <= bs_t.as_nanos() as f64 * 1.15,
            "optimized PS {opt} should approach BS {bs_t}"
        );
    }

    #[test]
    fn single_step_schedule_is_untouched() {
        let mut p = Pattern::new(8);
        p.set(0, 4, 100);
        p.set(4, 0, 100);
        let tree = FatTree::new(8);
        let s = ps(&p);
        assert_eq!(s.num_steps(), 1);
        let o = balance_crossings(&s, &tree);
        assert_eq!(o.steps(), s.steps());
    }

    #[test]
    #[should_panic(expected = "pairwise-disjoint")]
    fn rejects_non_disjoint_input() {
        let pattern = Pattern::complete_exchange(8, 8);
        let tree = FatTree::new(8);
        balance_crossings(&crate::irregular::ls(&pattern), &tree);
    }
}
