//! Pairwise Scheduling (PS, paper §4.2).
//!
//! The PEX pairing (`me XOR j`) applied to an irregular pattern: each step's
//! pairs consult the matrix and perform an exchange, a single send, or
//! nothing. Steps where *nobody* communicates disappear entirely, which is
//! how PS finishes the paper's pattern P in 6 steps instead of PEX's 7.

use super::pair_op;
use crate::pattern::Pattern;
use crate::schedule::{Schedule, Step};

/// Generate the PS schedule for `pattern` (node count must be a power of
/// two for the XOR pairing).
pub fn ps(pattern: &Pattern) -> Schedule {
    let n = pattern.n();
    crate::regular::assert_power_of_two(n, "PS");
    let mut schedule = Schedule::new(n);
    for j in 1..n {
        let mut step = Step::default();
        for i in 0..n {
            let k = i ^ j;
            if i < k {
                if let Some(op) = pair_op(pattern, i, k) {
                    step.ops.push(op);
                }
            }
        }
        schedule.push_step_nonempty(step);
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::CommOp;

    /// Table 8: PS completes pattern P in 6 steps — the XOR-distance-2 step
    /// matches no entry of P and vanishes.
    #[test]
    fn paper_table_8() {
        let p = Pattern::paper_pattern_p(1);
        let s = ps(&p);
        assert_eq!(s.num_steps(), 6);
        s.check_coverage(&p).unwrap();
        s.check_pairwise_disjoint().unwrap();
        // First step pairs at XOR distance 1: (0,1) exchange, (2,3)
        // exchange, (4,5) exchange, (6,7) exchange — all four pairs of P's
        // distance-1 entries are bidirectional.
        let kinds: Vec<(usize, usize, bool)> = s.steps()[0]
            .ops
            .iter()
            .map(|op| {
                let (a, b) = op.endpoints();
                (a, b, matches!(op, CommOp::Exchange { .. }))
            })
            .collect();
        assert_eq!(
            kinds,
            vec![(0, 1, true), (2, 3, true), (4, 5, true), (6, 7, true)]
        );
    }

    /// The empty step is exactly XOR distance 2: pairs (0,2),(1,3),(4,6),
    /// (5,7) have no entries in P in either direction.
    #[test]
    fn distance_two_step_vanishes() {
        let p = Pattern::paper_pattern_p(1);
        for (a, b) in [(0usize, 2usize), (1, 3), (4, 6), (5, 7)] {
            assert!(!p.pair_active(a, b), "({a},{b}) unexpectedly active");
        }
    }

    #[test]
    fn full_pattern_reduces_to_pex() {
        let p = Pattern::complete_exchange(16, 128);
        assert_eq!(ps(&p).steps(), crate::regular::pex(16, 128).steps());
    }

    #[test]
    fn asymmetric_entries_become_sends() {
        let mut p = Pattern::new(4);
        p.set(0, 1, 99); // only one direction
        let s = ps(&p);
        assert_eq!(s.num_steps(), 1);
        assert_eq!(
            s.steps()[0].ops,
            vec![CommOp::Send {
                from: 0,
                to: 1,
                bytes: 99
            }]
        );
    }
}
