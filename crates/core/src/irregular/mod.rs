//! Runtime schedulers for irregular communication patterns (paper §4).
//!
//! An irregular problem's communication matrix is only known at runtime.
//! Each scheduler here takes a [`Pattern`] matrix and
//! produces a [`Schedule`]; "the communication
//! schedule needs to be created only once and can be used thereafter … for
//! as many iterations as required", so schedule *quality* (steps, idle
//! slots) is what matters.
//!
//! | Scheduler | Basis | Behaviour on pattern entries that are zero |
//! |---|---|---|
//! | [`ls`](fn@ls) Linear   | LEX pairing  | the processor idles that step |
//! | [`ps`](fn@ps) Pairwise | PEX pairing  | pair idles; empty steps vanish |
//! | [`bs`](fn@bs) Balanced | BEX pairing  | pair idles; empty steps vanish |
//! | [`gs`](fn@gs) Greedy   | Figure 12    | picks the *next available* partner instead of idling |

pub mod bs;
pub mod crystal;
pub mod gs;
pub mod ls;
pub mod ps;

pub use bs::bs;
pub use crystal::{crystal, crystal_route_payload};
pub use gs::gs;
pub use ls::ls;
pub use ps::ps;

use crate::pattern::Pattern;
use crate::schedule::Schedule;

/// Which irregular scheduler to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IrregularAlg {
    /// Linear Scheduling.
    Ls,
    /// Pairwise Scheduling.
    Ps,
    /// Balanced Scheduling.
    Bs,
    /// Greedy Scheduling.
    Gs,
}

impl IrregularAlg {
    /// All four, in the paper's order.
    pub const ALL: [IrregularAlg; 4] = [
        IrregularAlg::Ls,
        IrregularAlg::Ps,
        IrregularAlg::Bs,
        IrregularAlg::Gs,
    ];

    /// The paper's name.
    pub fn name(&self) -> &'static str {
        match self {
            IrregularAlg::Ls => "Linear",
            IrregularAlg::Ps => "Pairwise",
            IrregularAlg::Bs => "Balanced",
            IrregularAlg::Gs => "Greedy",
        }
    }

    /// Schedule `pattern` with this algorithm.
    pub fn schedule(&self, pattern: &Pattern) -> Schedule {
        match self {
            IrregularAlg::Ls => ls(pattern),
            IrregularAlg::Ps => ps(pattern),
            IrregularAlg::Bs => bs(pattern),
            IrregularAlg::Gs => gs(pattern),
        }
    }
}

/// Shared helper for the pairing-based schedulers (PS and BS): given the
/// pairing for a step, emit an exchange when both directions are nonzero, a
/// send when only one is, nothing when the pair does not communicate.
pub(crate) fn pair_op(pattern: &Pattern, a: usize, b: usize) -> Option<crate::schedule::CommOp> {
    use crate::schedule::CommOp;
    debug_assert!(a < b);
    let ab = pattern.get(a, b);
    let ba = pattern.get(b, a);
    match (ab > 0, ba > 0) {
        (true, true) => Some(CommOp::Exchange {
            a,
            b,
            bytes_ab: ab,
            bytes_ba: ba,
        }),
        (true, false) => Some(CommOp::Send {
            from: a,
            to: b,
            bytes: ab,
        }),
        (false, true) => Some(CommOp::Send {
            from: b,
            to: a,
            bytes: ba,
        }),
        (false, false) => None,
    }
}
