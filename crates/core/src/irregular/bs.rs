//! Balanced Scheduling (BS, paper §4.3).
//!
//! The BEX pairing (XOR over rotated virtual numbers) applied to an
//! irregular pattern. Like PS it exchanges/sends/idles per the matrix and
//! drops empty steps; unlike PS its active pairs inherit BEX's balanced
//! local/remote mix, which is why BS wins once the pattern is dense enough
//! (> 50 %) for root contention to matter.

use super::pair_op;
use crate::pattern::Pattern;
use crate::regular::bex_partner;
use crate::schedule::{Schedule, Step};

/// Generate the BS schedule for `pattern` (node count must be a power of
/// two for the virtual-number XOR pairing).
pub fn bs(pattern: &Pattern) -> Schedule {
    let n = pattern.n();
    crate::regular::assert_power_of_two(n, "BS");
    let mut schedule = Schedule::new(n);
    for j in 1..n {
        let mut step = Step::default();
        for i in 0..n {
            let k = bex_partner(i, j, n);
            if i < k {
                if let Some(op) = pair_op(pattern, i, k) {
                    step.ops.push(op);
                }
            }
        }
        schedule.push_step_nonempty(step);
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 9: BS completes pattern P in 7 steps — every BEX step of the
    /// 8-node machine touches at least one entry of P.
    #[test]
    fn paper_table_9() {
        let p = Pattern::paper_pattern_p(1);
        let s = bs(&p);
        assert_eq!(s.num_steps(), 7);
        s.check_coverage(&p).unwrap();
        s.check_pairwise_disjoint().unwrap();
    }

    #[test]
    fn full_pattern_reduces_to_bex() {
        let p = Pattern::complete_exchange(8, 32);
        assert_eq!(bs(&p).steps(), crate::regular::bex(8, 32).steps());
    }

    #[test]
    fn coverage_on_random_patterns() {
        // Deterministic pseudo-random fill without pulling in `rand` here.
        for n in [4usize, 8, 16, 32] {
            let mut p = Pattern::new(n);
            let mut state = 0x9e3779b97f4a7c15u64;
            for i in 0..n {
                for j in 0..n {
                    if i != j {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        if state >> 62 == 0 {
                            p.set(i, j, 1 + (state & 0xff));
                        }
                    }
                }
            }
            bs(&p).check_coverage(&p).unwrap();
        }
    }
}
