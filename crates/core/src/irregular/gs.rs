//! Greedy Scheduling (GS, paper §4.4, Figure 12).
//!
//! Where PS/BS leave a processor idle when its *assigned* partner has
//! nothing for it, the greedy scheduler lets every processor grab "the next
//! available processor it has to communicate with". Iterations of the
//! greedy loop become schedule steps. For sparse patterns (< 50 % density)
//! this minimizes steps and wins; past ~50 % its ad-hoc pairings can need
//! *more* steps than the structured schedules, which is the crossover the
//! paper reports.
//!
//! Availability is per direction: a processor that has issued its send for
//! the step can still *receive* from someone else (visible in Table 10,
//! step 3, where node 0 sends to 5 and receives from 7 in the same step).
//! An exchange occupies both directions on both nodes.

use crate::pattern::Pattern;
use crate::schedule::{CommOp, Schedule, Step};

/// Generate the GS schedule for `pattern` (any node count ≥ 2).
pub fn gs(pattern: &Pattern) -> Schedule {
    let n = pattern.n();
    let mut schedule = Schedule::new(n);
    // remaining[i] = pending targets of i, kept sorted ascending.
    let mut remaining: Vec<Vec<usize>> = (0..n)
        .map(|i| {
            (0..n)
                .filter(|&j| j != i && pattern.get(i, j) > 0)
                .collect()
        })
        .collect();
    let mut pending: usize = remaining.iter().map(|r| r.len()).sum();
    let mut send_busy = vec![false; n];
    let mut recv_busy = vec![false; n];
    while pending > 0 {
        send_busy.fill(false);
        recv_busy.fill(false);
        let mut step = Step::default();
        for i in 0..n {
            if send_busy[i] || remaining[i].is_empty() {
                continue;
            }
            // The next available target: smallest pending j whose receive
            // side is free this iteration. A target whose reverse direction
            // is also pending is *deferred* (not demoted to a one-way send)
            // when the exchange is infeasible right now — pairing the two
            // directions later saves a step, and this is the behaviour
            // Table 10 exhibits.
            let mut chosen: Option<(usize, bool)> = None; // (position, exchange?)
            for (pos, &j) in remaining[i].iter().enumerate() {
                if recv_busy[j] {
                    continue;
                }
                let reverse_pending = remaining[j].binary_search(&i).is_ok();
                if reverse_pending {
                    if !send_busy[j] && !recv_busy[i] {
                        chosen = Some((pos, true));
                        break;
                    }
                    // Exchange blocked this iteration: defer this target.
                    continue;
                }
                chosen = Some((pos, false));
                break;
            }
            let Some((pos, exchange)) = chosen else {
                continue;
            };
            let j = remaining[i][pos];
            if exchange {
                let (a, b) = (i.min(j), i.max(j));
                step.ops.push(CommOp::Exchange {
                    a,
                    b,
                    bytes_ab: pattern.get(a, b),
                    bytes_ba: pattern.get(b, a),
                });
                send_busy[i] = true;
                recv_busy[i] = true;
                send_busy[j] = true;
                recv_busy[j] = true;
                remaining[i].remove(pos);
                let rpos = remaining[j]
                    .binary_search(&i)
                    .expect("reverse entry present");
                remaining[j].remove(rpos);
                pending -= 2;
            } else {
                step.ops.push(CommOp::Send {
                    from: i,
                    to: j,
                    bytes: pattern.get(i, j),
                });
                send_busy[i] = true;
                recv_busy[j] = true;
                remaining[i].remove(pos);
                pending -= 1;
            }
        }
        debug_assert!(!step.ops.is_empty(), "greedy iteration made no progress");
        schedule.push_step(step);
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x(a: usize, b: usize, p: &Pattern) -> CommOp {
        CommOp::Exchange {
            a,
            b,
            bytes_ab: p.get(a, b),
            bytes_ba: p.get(b, a),
        }
    }

    fn s(from: usize, to: usize, p: &Pattern) -> CommOp {
        CommOp::Send {
            from,
            to,
            bytes: p.get(from, to),
        }
    }

    /// Table 10 of the paper: the greedy schedule for pattern P, six steps,
    /// including the step-3 subtlety where node 0 sends to 5 *and* receives
    /// from 7.
    #[test]
    fn paper_table_10() {
        let p = Pattern::paper_pattern_p(1);
        let sched = gs(&p);
        assert_eq!(sched.num_steps(), 6);
        sched.check_coverage(&p).unwrap();
        let expect: Vec<Vec<CommOp>> = vec![
            vec![x(0, 1, &p), x(2, 3, &p), x(4, 5, &p), x(6, 7, &p)],
            vec![x(0, 3, &p), x(1, 2, &p), x(4, 7, &p), x(5, 6, &p)],
            vec![s(0, 5, &p), x(1, 4, &p), x(3, 6, &p), s(7, 0, &p)],
            vec![x(0, 6, &p), x(1, 5, &p), x(3, 4, &p)],
            vec![s(1, 6, &p), s(3, 5, &p), s(4, 2, &p)],
            vec![x(1, 7, &p), s(6, 2, &p)],
        ];
        for (i, step) in sched.steps().iter().enumerate() {
            assert_eq!(step.ops, expect[i], "step {}", i + 1);
        }
    }

    /// §4.4: "For a complete exchange operation this algorithm creates the
    /// same communication schedule as pairwise exchange."
    #[test]
    fn complete_exchange_reduces_to_pex() {
        for n in [4usize, 8, 16] {
            let p = Pattern::complete_exchange(n, 100);
            assert_eq!(gs(&p).steps(), crate::regular::pex(n, 100).steps(), "n={n}");
        }
    }

    #[test]
    fn directional_availability_respected() {
        let p = Pattern::paper_pattern_p(1);
        let sched = gs(&p);
        // In every step, each node sends at most once and receives at most
        // once.
        for (si, step) in sched.steps().iter().enumerate() {
            let n = p.n();
            let mut sends = vec![0; n];
            let mut recvs = vec![0; n];
            for op in &step.ops {
                match *op {
                    CommOp::Exchange { a, b, .. } => {
                        sends[a] += 1;
                        recvs[a] += 1;
                        sends[b] += 1;
                        recvs[b] += 1;
                    }
                    CommOp::Send { from, to, .. } => {
                        sends[from] += 1;
                        recvs[to] += 1;
                    }
                }
            }
            for i in 0..n {
                assert!(sends[i] <= 1, "step {si}: node {i} sends twice");
                assert!(recvs[i] <= 1, "step {si}: node {i} receives twice");
            }
        }
    }

    #[test]
    fn sparse_pattern_uses_fewer_steps_than_pairwise() {
        // A 10%-ish pattern: greedy should need no more steps than PS.
        let mut p = Pattern::new(16);
        let picks = [(0, 5), (1, 9), (2, 14), (3, 7), (10, 4), (12, 6), (13, 0)];
        for &(i, j) in &picks {
            p.set(i, j, 256);
        }
        let g = gs(&p);
        let ps = crate::irregular::ps(&p);
        assert!(g.num_steps() <= ps.num_steps());
        g.check_coverage(&p).unwrap();
    }

    #[test]
    fn works_for_non_power_of_two() {
        let mut p = Pattern::new(6);
        p.set(0, 3, 10);
        p.set(3, 0, 20);
        p.set(1, 4, 5);
        p.set(5, 2, 7);
        let g = gs(&p);
        g.check_coverage(&p).unwrap();
        assert_eq!(g.num_steps(), 1, "everything fits one greedy iteration");
    }
}
