//! The crystal router — the prior art the paper cites for runtime message
//! scheduling ("dynamic scheduling of messages on hypercube can be done by
//! using crystal router described in \[7\]", Fox et al., *Solving Problems on
//! Concurrent Processors*).
//!
//! The crystal router treats the machine as a lg N-dimensional hypercube
//! and runs exactly lg N store-and-forward steps: at step *s* every node
//! exchanges with its dimension-*s* neighbour, forwarding every held
//! message whose destination differs from the holder in bit *s*. Unlike
//! the paper's four schedulers it never idles a channel and never pays
//! more than lg N step latencies — but it *forwards*: a message crossing h
//! hypercube dimensions is transmitted h times and reshuffled at every
//! hop. The paper's greedy scheduler wins against it exactly where direct
//! delivery beats aggregation (all of Table 11/12's byte sizes); the
//! crystal router wins for swarms of tiny messages, the regime it was
//! designed for. `cargo bench --bench ablations` carries the comparison.

use bytes::Bytes;
use cm5_sim::CmmdNode;

use crate::exec::{pack_triples, unpack_triples};
use crate::pattern::Pattern;
use crate::schedule::{CommOp, Schedule, Step};

/// Build the crystal-router schedule for `pattern` (power-of-two nodes):
/// lg N steps of aggregated exchanges, flagged store-and-forward. Pairs
/// with nothing to forward in either direction still exchange a header
/// (0 bytes ⇒ one packet) — the router's fixed handshake.
pub fn crystal(pattern: &Pattern) -> Schedule {
    let n = pattern.n();
    crate::regular::assert_power_of_two(n, "crystal router");
    let mut schedule = Schedule::new(n);
    schedule.store_and_forward = true;
    // held[node] = (dst, bytes) messages currently at `node`.
    let mut held: Vec<Vec<(usize, u64)>> = vec![Vec::new(); n];
    #[allow(clippy::needless_range_loop)] // i is a node id
    for i in 0..n {
        for j in 0..n {
            let b = pattern.get(i, j);
            if i != j && b > 0 {
                held[i].push((j, b));
            }
        }
    }
    let steps = n.trailing_zeros();
    for s in 0..steps {
        let bit = 1usize << s;
        let mut step = Step::default();
        for i in 0..n {
            let partner = i ^ bit;
            if i > partner {
                continue;
            }
            // Everything at i destined across bit s, and vice versa.
            let (go_ab, keep_a): (Vec<_>, Vec<_>) =
                held[i].iter().partition(|&&(d, _)| d & bit != i & bit);
            let (go_ba, keep_b): (Vec<_>, Vec<_>) = held[partner]
                .iter()
                .partition(|&&(d, _)| d & bit != partner & bit);
            let bytes_ab: u64 = go_ab.iter().map(|&&(_, b)| b).sum();
            let bytes_ba: u64 = go_ba.iter().map(|&&(_, b)| b).sum();
            step.ops.push(CommOp::Exchange {
                a: i,
                b: partner,
                bytes_ab,
                bytes_ba,
            });
            let mut new_a: Vec<(usize, u64)> = keep_a.into_iter().copied().collect();
            new_a.extend(go_ba.iter().copied().copied());
            let mut new_b: Vec<(usize, u64)> = keep_b.into_iter().copied().collect();
            new_b.extend(go_ab.iter().copied().copied());
            held[i] = new_a;
            held[partner] = new_b;
        }
        schedule.push_step(step);
    }
    debug_assert!(
        held.iter()
            .enumerate()
            .all(|(i, msgs)| msgs.iter().all(|&(d, _)| d == i)),
        "crystal routing must deliver everything"
    );
    schedule
}

/// Payload-carrying crystal routing over the CMMD thread API: every node
/// calls this with `outgoing[j]` = payload for node `j` (or `None`).
/// Returns `incoming[j]` = payload received from `j`. Messages hop along
/// hypercube dimensions with real pack/unpack at every hop.
pub fn crystal_route_payload(node: &CmmdNode, outgoing: &[Option<Bytes>]) -> Vec<Option<Bytes>> {
    let n = node.nodes();
    let me = node.id();
    assert!(
        n.is_power_of_two(),
        "crystal router requires power-of-two nodes"
    );
    assert_eq!(outgoing.len(), n);
    let mut held: Vec<(u32, u32, Bytes)> = outgoing
        .iter()
        .enumerate()
        .filter_map(|(j, b)| {
            b.as_ref()
                .filter(|_| j != me)
                .map(|b| (me as u32, j as u32, b.clone()))
        })
        .collect();
    for s in 0..n.trailing_zeros() {
        let bit = 1u32 << s;
        let partner = me ^ bit as usize;
        let (to_send, to_keep): (Vec<_>, Vec<_>) = held
            .into_iter()
            .partition(|&(_, d, _)| d & bit != (me as u32) & bit);
        held = to_keep;
        let packed = pack_triples(&to_send);
        node.memcpy(packed.len() as u64);
        let got = node.swap(partner, s, packed);
        node.memcpy(got.len() as u64);
        held.extend(unpack_triples(&got));
    }
    let mut incoming: Vec<Option<Bytes>> = vec![None; n];
    for (src, dst, payload) in held {
        debug_assert_eq!(dst as usize, me, "crystal routing delivered a stray");
        incoming[src as usize] = Some(payload);
    }
    incoming
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::run_schedule;
    use crate::irregular::gs;
    use cm5_sim::{MachineParams, Simulation};

    #[test]
    fn always_lg_n_steps() {
        for n in [4usize, 8, 32] {
            let sparse = {
                let mut p = Pattern::new(n);
                p.set(0, n - 1, 100);
                p
            };
            let s = crystal(&sparse);
            assert_eq!(s.num_steps(), n.trailing_zeros() as usize);
            assert!(s.store_and_forward);
            s.check_pairwise_disjoint().unwrap();
        }
    }

    #[test]
    fn total_bytes_count_forwarding_hops() {
        // One message 0 → 7 on 8 nodes crosses all 3 dimensions: the
        // schedule must move 3 × its bytes (plus zero-byte handshakes).
        let mut p = Pattern::new(8);
        p.set(0, 7, 100);
        let s = crystal(&p);
        assert_eq!(s.total_bytes(), 300);
    }

    #[test]
    fn complete_exchange_volume_matches_rex() {
        // On a full pattern the crystal router degenerates to REX's
        // aggregated doubling: same total bytes.
        let n = 16;
        let bytes = 64;
        let c = crystal(&Pattern::complete_exchange(n, bytes));
        let r = crate::regular::rex(n, bytes);
        assert_eq!(c.total_bytes(), r.total_bytes());
        assert_eq!(c.num_steps(), r.num_steps());
    }

    #[test]
    fn runs_on_simulator() {
        let p = Pattern::paper_pattern_p(256);
        let r = run_schedule(&crystal(&p), &MachineParams::cm5_1992()).unwrap();
        // 3 steps × 4 pairs × 2 directions.
        assert_eq!(r.messages, 24);
    }

    #[test]
    fn payload_routing_delivers_pattern_p() {
        let pattern = Pattern::paper_pattern_p(5);
        let n = 8;
        let sim = Simulation::new(n, MachineParams::cm5_1992());
        let (_, results) = sim
            .run_nodes_collect(|node| {
                let me = node.id();
                let outgoing: Vec<Option<Bytes>> = (0..n)
                    .map(|j| {
                        (j != me && pattern.get(me, j) > 0)
                            .then(|| Bytes::from(vec![me as u8, j as u8, 0xCB]))
                    })
                    .collect();
                crystal_route_payload(node, &outgoing)
            })
            .unwrap();
        for (me, incoming) in results.iter().enumerate() {
            for (j, slot) in incoming.iter().enumerate().take(n) {
                if j == me {
                    continue;
                }
                match (slot, pattern.get(j, me) > 0) {
                    (Some(data), true) => assert_eq!(data.as_ref(), &[j as u8, me as u8, 0xCB]),
                    (None, false) => {}
                    (got, expect) => panic!("node {me} from {j}: {got:?} vs {expect}"),
                }
            }
        }
    }

    /// The regime comparison the paper implies: greedy wins on Table 12-like
    /// patterns (hundreds of bytes, sparse); the crystal router wins when
    /// thousands of tiny messages make per-step latency dominant.
    #[test]
    fn crossover_against_greedy() {
        let params = MachineParams::cm5_1992();
        // Table 12-like: 25 % density, 512 B messages → greedy wins.
        let fat = Pattern::seeded_random(32, 0.25, 512, 11);
        let g = run_schedule(&gs(&fat), &params).unwrap().makespan;
        let c = run_schedule(&crystal(&fat), &params).unwrap().makespan;
        assert!(g < c, "greedy {g} should beat crystal {c} on fat patterns");
        // Tiny messages, dense pattern → crystal's lg N steps win.
        let tiny = Pattern::seeded_random(32, 0.9, 4, 11);
        let g = run_schedule(&gs(&tiny), &params).unwrap().makespan;
        let c = run_schedule(&crystal(&tiny), &params).unwrap().makespan;
        assert!(c < g, "crystal {c} should beat greedy {g} on tiny messages");
    }
}
