//! Linear Scheduling (LS, paper §4.1).
//!
//! The linear-exchange pairing applied to an irregular pattern: step *i*
//! fans whatever messages the pattern holds for column *i* into processor
//! *i*; processors with nothing to send that step idle. Under synchronous
//! communication the single receiver serializes its step, so LS inherits
//! LEX's pathology — "the linear scheduling algorithm performs the worst in
//! all cases".

use crate::pattern::Pattern;
use crate::schedule::{CommOp, Schedule, Step};

/// Generate the LS schedule for `pattern`: step `i` sends every nonzero
/// `pattern[j][i]` into processor `i` (ascending `j`); steps with no
/// communication at all are dropped.
pub fn ls(pattern: &Pattern) -> Schedule {
    let n = pattern.n();
    let mut schedule = Schedule::new(n);
    for receiver in 0..n {
        let mut step = Step::default();
        for sender in 0..n {
            if sender == receiver {
                continue;
            }
            let bytes = pattern.get(sender, receiver);
            if bytes > 0 {
                step.ops.push(CommOp::Send {
                    from: sender,
                    to: receiver,
                    bytes,
                });
            }
        }
        schedule.push_step_nonempty(step);
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 7: LS on the paper's pattern P finishes in 8 steps (every
    /// column of P is nonempty).
    #[test]
    fn paper_table_7_step_count() {
        let p = Pattern::paper_pattern_p(1);
        let s = ls(&p);
        assert_eq!(s.num_steps(), 8);
        s.check_coverage(&p).unwrap();
        // Step 0 receives into processor 0 from exactly {1, 3, 6, 7}
        // (column 0 of Table 6), in ascending order.
        let senders: Vec<usize> = s.steps()[0].ops.iter().map(|op| op.endpoints().0).collect();
        assert_eq!(senders, vec![1, 3, 6, 7]);
    }

    #[test]
    fn skips_empty_columns() {
        let mut p = Pattern::new(4);
        p.set(0, 1, 10);
        p.set(2, 1, 20);
        p.set(1, 3, 30);
        let s = ls(&p);
        // Only columns 1 and 3 receive anything.
        assert_eq!(s.num_steps(), 2);
        s.check_coverage(&p).unwrap();
    }

    #[test]
    fn full_pattern_reduces_to_lex() {
        let p = Pattern::complete_exchange(8, 64);
        let s = ls(&p);
        let lex = crate::regular::lex(8, 64);
        assert_eq!(s.steps(), lex.steps());
    }
}
