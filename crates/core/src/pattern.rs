//! Communication patterns.
//!
//! The paper represents a communication pattern "as a two-dimensional array
//! called 'Pattern'. The element Pattern\[i\]\[j\] indicates the number of
//! bytes to be sent from processor i to processor j" (§4). [`Pattern`] is
//! that matrix, plus the builders and statistics the evaluation needs.

use std::fmt;

/// A dense N×N matrix of bytes-to-send. `get(i, j)` is how many bytes node
/// `i` must send to node `j`; the diagonal is always zero.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pattern {
    n: usize,
    data: Vec<u64>,
}

impl Pattern {
    /// An all-zero pattern over `n` nodes.
    pub fn new(n: usize) -> Pattern {
        assert!(n >= 2, "pattern needs at least 2 nodes");
        Pattern {
            n,
            data: vec![0; n * n],
        }
    }

    /// The complete-exchange pattern: every ordered pair exchanges `bytes`.
    pub fn complete_exchange(n: usize, bytes: u64) -> Pattern {
        let mut p = Pattern::new(n);
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    p.set(i, j, bytes);
                }
            }
        }
        p
    }

    /// Build from explicit rows (row `i` = bytes from `i` to each `j`).
    /// Panics if the matrix is not square or the diagonal is nonzero.
    pub fn from_rows(rows: &[Vec<u64>]) -> Pattern {
        let n = rows.len();
        let mut p = Pattern::new(n);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), n, "row {i} has wrong length");
            for (j, &b) in row.iter().enumerate() {
                if i == j {
                    assert_eq!(b, 0, "diagonal entry ({i},{i}) must be zero");
                } else {
                    p.set(i, j, b);
                }
            }
        }
        p
    }

    /// The paper's 8-processor example pattern **P** (Table 6), with each
    /// unit entry scaled to `bytes` bytes.
    pub fn paper_pattern_p(bytes: u64) -> Pattern {
        const P: [[u64; 8]; 8] = [
            [0, 1, 0, 1, 0, 1, 1, 0],
            [1, 0, 1, 0, 1, 1, 1, 1],
            [0, 1, 0, 1, 0, 0, 0, 0],
            [1, 0, 1, 0, 1, 1, 1, 0],
            [0, 1, 1, 1, 0, 1, 0, 1],
            [0, 1, 0, 0, 1, 0, 1, 0],
            [1, 0, 1, 1, 0, 1, 0, 1],
            [1, 1, 0, 0, 1, 0, 1, 0],
        ];
        let rows: Vec<Vec<u64>> = P
            .iter()
            .map(|row| row.iter().map(|&u| u * bytes).collect())
            .collect();
        Pattern::from_rows(&rows)
    }

    /// A deterministic pseudo-random pattern: each ordered pair carries
    /// `bytes` with probability `density`. Uses a self-contained xorshift
    /// generator so `cm5-core` needs no RNG dependency (the richer seeded
    /// generators live in `cm5-workloads::synthetic`).
    pub fn seeded_random(n: usize, density: f64, bytes: u64, seed: u64) -> Pattern {
        assert!((0.0..=1.0).contains(&density), "density out of range");
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut p = Pattern::new(n);
        for i in 0..n {
            for j in 0..n {
                if i != j && next() < density {
                    p.set(i, j, bytes);
                }
            }
        }
        p
    }

    /// Parse a pattern from text: one row per line, whitespace-separated
    /// byte counts, `#`-to-end-of-line comments, blank lines skipped. The
    /// matrix must be square with a zero diagonal. This is the `cm5 lint
    /// --pattern-file` format, and [`Pattern`]'s `Display` output round-trips
    /// through it.
    pub fn parse_text(text: &str) -> Result<Pattern, String> {
        let mut rows: Vec<Vec<u64>> = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let row: Result<Vec<u64>, String> = line
                .split_whitespace()
                .map(|w| {
                    w.parse::<u64>()
                        .map_err(|_| format!("line {}: '{w}' is not a byte count", lineno + 1))
                })
                .collect();
            rows.push(row?);
        }
        let n = rows.len();
        if n < 2 {
            return Err(format!("pattern needs at least 2 rows, got {n}"));
        }
        let mut p = Pattern::new(n);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != n {
                return Err(format!(
                    "row {i} has {} entries but the matrix has {n} rows",
                    row.len()
                ));
            }
            for (j, &b) in row.iter().enumerate() {
                if i == j {
                    if b != 0 {
                        return Err(format!("diagonal entry ({i},{i}) must be 0, got {b}"));
                    }
                } else {
                    p.set(i, j, b);
                }
            }
        }
        Ok(p)
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Bytes from `i` to `j`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> u64 {
        self.data[i * self.n + j]
    }

    /// Set bytes from `i` to `j`. Panics on the diagonal.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, bytes: u64) {
        assert!(i != j, "cannot send to self ({i})");
        self.data[i * self.n + j] = bytes;
    }

    /// Ordered pairs with a nonzero entry.
    pub fn nonzero_pairs(&self) -> usize {
        self.data.iter().filter(|&&b| b > 0).count()
    }

    /// Fraction of the `n(n-1)` possible ordered pairs that communicate —
    /// the paper's "communication density as a percentage of complete
    /// exchange".
    pub fn density(&self) -> f64 {
        self.nonzero_pairs() as f64 / (self.n * (self.n - 1)) as f64
    }

    /// Total bytes across all pairs.
    pub fn total_bytes(&self) -> u64 {
        self.data.iter().sum()
    }

    /// Mean bytes per communicating pair (the "average number of bytes
    /// transferred per communication operation" of Table 12).
    pub fn avg_msg_bytes(&self) -> f64 {
        let pairs = self.nonzero_pairs();
        if pairs == 0 {
            0.0
        } else {
            self.total_bytes() as f64 / pairs as f64
        }
    }

    /// Whether `i` talks to `j` in at least one direction.
    #[inline]
    pub fn pair_active(&self, i: usize, j: usize) -> bool {
        self.get(i, j) > 0 || self.get(j, i) > 0
    }

    /// Whether the *support* is symmetric (`i→j` nonzero ⇔ `j→i` nonzero).
    pub fn symmetric_support(&self) -> bool {
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                if (self.get(i, j) > 0) != (self.get(j, i) > 0) {
                    return false;
                }
            }
        }
        true
    }

    /// Per-row out-bytes (how much each node must send in total).
    pub fn row_totals(&self) -> Vec<u64> {
        (0..self.n)
            .map(|i| (0..self.n).map(|j| self.get(i, j)).sum())
            .collect()
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.n {
            for j in 0..self.n {
                write!(f, "{:>6} ", self.get(i, j))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_exchange_density_is_one() {
        let p = Pattern::complete_exchange(8, 256);
        assert_eq!(p.density(), 1.0);
        assert_eq!(p.nonzero_pairs(), 56);
        assert_eq!(p.total_bytes(), 56 * 256);
        assert!(p.symmetric_support());
    }

    #[test]
    fn paper_pattern_matches_table_6() {
        let p = Pattern::paper_pattern_p(1);
        // Spot checks against Table 6.
        assert_eq!(p.get(0, 1), 1);
        assert_eq!(p.get(0, 2), 0);
        assert_eq!(p.get(0, 5), 1);
        assert_eq!(p.get(5, 0), 0); // asymmetric pair
        assert_eq!(p.get(7, 0), 1);
        assert_eq!(p.get(0, 7), 0);
        assert!(!p.symmetric_support());
        // Row 2 talks only to 1 and 3.
        assert_eq!(p.row_totals()[2], 2);
    }

    #[test]
    fn paper_pattern_scales_bytes() {
        let p = Pattern::paper_pattern_p(512);
        assert_eq!(p.get(1, 0), 512);
        assert_eq!(p.avg_msg_bytes(), 512.0);
    }

    #[test]
    #[should_panic(expected = "diagonal")]
    fn from_rows_rejects_diagonal() {
        Pattern::from_rows(&[vec![1, 0], vec![0, 0]]);
    }

    #[test]
    fn density_of_sparse_pattern() {
        let mut p = Pattern::new(4);
        p.set(0, 1, 100);
        p.set(2, 3, 100);
        assert_eq!(p.nonzero_pairs(), 2);
        assert!((p.density() - 2.0 / 12.0).abs() < 1e-12);
        assert_eq!(p.avg_msg_bytes(), 100.0);
    }

    #[test]
    fn parse_text_roundtrips_display() {
        let p = Pattern::paper_pattern_p(256);
        let parsed = Pattern::parse_text(&p.to_string()).unwrap();
        assert_eq!(p, parsed);
    }

    #[test]
    fn parse_text_accepts_comments_and_rejects_malformed() {
        let p = Pattern::parse_text("# halo exchange\n0 8\n8 0  # back-edge\n").unwrap();
        assert_eq!(p.get(0, 1), 8);
        assert_eq!(p.get(1, 0), 8);
        assert!(Pattern::parse_text("0 1\n1").unwrap_err().contains("row 1"));
        assert!(Pattern::parse_text("0 x\n1 0")
            .unwrap_err()
            .contains("byte count"));
        assert!(Pattern::parse_text("5 1\n1 0")
            .unwrap_err()
            .contains("diagonal"));
        assert!(Pattern::parse_text("").is_err());
    }

    #[test]
    fn pair_active_sees_both_directions() {
        let mut p = Pattern::new(4);
        p.set(0, 1, 5);
        assert!(p.pair_active(0, 1));
        assert!(p.pair_active(1, 0));
        assert!(!p.pair_active(2, 3));
    }
}
