//! # cm5-core — communication-pattern scheduling for the CM-5
//!
//! The primary contribution of *Scheduling Regular and Irregular
//! Communication Patterns on the CM-5* (Ponnusamy, Thakur, Choudhary, Fox;
//! SC '92), as a library:
//!
//! * **Complete exchange** ([`regular`]): Linear (LEX), Pairwise (PEX),
//!   Recursive (REX) and Balanced (BEX) all-to-all schedules — Tables 1–4
//!   of the paper are unit tests here.
//! * **Broadcast** ([`broadcast`]): Linear (LIB) and Recursive (REB)
//!   one-to-all broadcasts, plus the system-broadcast primitive.
//! * **Irregular scheduling** ([`irregular`]): Linear (LS), Pairwise (PS),
//!   Balanced (BS) and Greedy (GS) runtime schedulers over a byte matrix
//!   ([`Pattern`]) — Tables 7–10 are unit tests.
//! * **Execution** ([`exec`]): lowering any [`Schedule`] to `cm5-sim` op
//!   programs, and payload-carrying implementations over the CMMD thread
//!   API that prove the data routing (REX's store-and-forward reshuffle
//!   included) is correct.
//! * **Analysis** ([`analysis`]): the schedule-shape metrics (step counts,
//!   per-step root crossings, idle slots) the paper's arguments rest on.
//!
//! ```
//! use cm5_core::prelude::*;
//! use cm5_sim::MachineParams;
//!
//! // Schedule an irregular pattern with the greedy scheduler and run it.
//! let pattern = Pattern::paper_pattern_p(256);
//! let schedule = gs(&pattern);
//! assert_eq!(schedule.num_steps(), 6); // Table 10
//! let report = run_schedule(&schedule, &MachineParams::cm5_1992()).unwrap();
//! assert!(report.makespan.as_millis_f64() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod broadcast;
pub mod collectives;
pub mod exec;
pub mod irregular;
pub mod optimize;
pub mod pattern;
pub mod regular;
pub mod schedule;

pub use analysis::{render_schedule, ScheduleSummary};
pub use broadcast::BroadcastAlg;
pub use irregular::IrregularAlg;
pub use pattern::Pattern;
pub use regular::ExchangeAlg;
pub use schedule::{CommOp, Schedule, ScheduleError, Step};

/// Convenient glob import of the whole public surface.
pub mod prelude {
    pub use crate::analysis::{render_schedule, ScheduleSummary};
    pub use crate::broadcast::{lib_linear, reb, BroadcastAlg};
    pub use crate::collectives::{
        allgather, allgather_payload, gather, scatter, shift, shift_payload,
    };
    pub use crate::exec::{
        broadcast_payload, broadcast_programs, complete_exchange_payload, exchange_programs, lower,
        lower_with, pattern_exchange_payload, run_schedule, run_schedule_jobs, LowerOptions,
    };
    pub use crate::irregular::{bs, crystal, crystal_route_payload, gs, ls, ps, IrregularAlg};
    pub use crate::optimize::balance_crossings;
    pub use crate::pattern::Pattern;
    pub use crate::regular::{bex, bex_partner, lex, pex, rex, rex_partner, ExchangeAlg};
    pub use crate::schedule::{CommOp, Schedule, ScheduleError, Step};
}
