//! Communication schedules.
//!
//! Every algorithm in the paper — regular or irregular — ultimately emits a
//! *schedule*: an ordered list of steps, each containing the pairwise
//! operations that (notionally) run concurrently. The schedule is the
//! artifact the paper prints in Tables 1–4 and 7–10; this module gives it a
//! first-class type with validation and the quality metrics the paper's
//! arguments rest on (step counts, per-step root crossings, idle slots).

use cm5_sim::FatTree;

use crate::pattern::Pattern;

/// One scheduled operation between a pair of nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommOp {
    /// Bidirectional exchange: `a` and `b` swap messages (`a→b` of
    /// `bytes_ab`, `b→a` of `bytes_ba`). Lowered with the paper's ordering
    /// rule: the lower-numbered node receives first.
    Exchange {
        /// Lower participant.
        a: usize,
        /// Higher participant.
        b: usize,
        /// Bytes from `a` to `b`.
        bytes_ab: u64,
        /// Bytes from `b` to `a`.
        bytes_ba: u64,
    },
    /// One-directional send.
    Send {
        /// Sender.
        from: usize,
        /// Receiver.
        to: usize,
        /// Bytes sent.
        bytes: u64,
    },
}

impl CommOp {
    /// The two endpoints (in `(low, high)` order for exchanges).
    pub fn endpoints(&self) -> (usize, usize) {
        match *self {
            CommOp::Exchange { a, b, .. } => (a, b),
            CommOp::Send { from, to, .. } => (from, to),
        }
    }

    /// Total bytes this op moves (both directions for exchanges).
    pub fn bytes(&self) -> u64 {
        match *self {
            CommOp::Exchange {
                bytes_ab, bytes_ba, ..
            } => bytes_ab + bytes_ba,
            CommOp::Send { bytes, .. } => bytes,
        }
    }
}

/// One step: operations the schedule intends to run concurrently. The ops
/// run in list order on any node that appears in several of them (only the
/// linear algorithms do that).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Step {
    /// Operations in this step.
    pub ops: Vec<CommOp>,
}

impl Step {
    /// Nodes taking part in this step (deduplicated, unordered count).
    pub fn participants(&self, n: usize) -> usize {
        let mut seen = vec![false; n];
        for op in &self.ops {
            let (a, b) = op.endpoints();
            seen[a] = true;
            seen[b] = true;
        }
        seen.iter().filter(|&&s| s).count()
    }
}

/// Validation failures for a schedule.
///
/// Every variant carries a stable machine-readable diagnostic code (see
/// [`ScheduleError::code`]) shared with the `cm5-verify` crate, and
/// `Display` renders `"V0xx: message"` — so core checks and the full
/// verifier report identical text for the same fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// A node appears in more than one op of a step that claims pairwise
    /// disjointness.
    NodeConflict {
        /// The step index.
        step: usize,
        /// The node appearing twice.
        node: usize,
    },
    /// The schedule moves a different number of bytes for a pair than the
    /// pattern requires.
    Coverage {
        /// Sender.
        from: usize,
        /// Receiver.
        to: usize,
        /// Bytes the pattern requires.
        expected: u64,
        /// Bytes the schedule moves.
        actual: u64,
    },
    /// An op references a node outside `0..n`.
    BadNode {
        /// The step index.
        step: usize,
        /// The offending node id.
        node: usize,
    },
    /// An op sends a message from a node to itself.
    SelfMessage {
        /// The step index.
        step: usize,
        /// The node messaging itself.
        node: usize,
    },
}

impl ScheduleError {
    /// The stable diagnostic code of this error (`"V001"`…), matching
    /// `cm5-verify`'s code table.
    pub fn code(&self) -> &'static str {
        match self {
            ScheduleError::BadNode { .. } => "V001",
            ScheduleError::SelfMessage { .. } => "V002",
            ScheduleError::NodeConflict { .. } => "V010",
            ScheduleError::Coverage {
                expected, actual, ..
            } => {
                if actual < expected {
                    "V012"
                } else {
                    "V013"
                }
            }
        }
    }
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: ", self.code())?;
        match self {
            ScheduleError::NodeConflict { step, node } => {
                write!(f, "node {node} appears twice in step {step}")
            }
            ScheduleError::Coverage {
                from,
                to,
                expected,
                actual,
            } => write!(
                f,
                "pair {from}->{to}: schedule moves {actual}B, pattern requires {expected}B"
            ),
            ScheduleError::BadNode { step, node } => {
                write!(f, "step {step} references invalid node {node}")
            }
            ScheduleError::SelfMessage { step, node } => {
                write!(f, "step {step} sends a message from node {node} to itself")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// A complete communication schedule over `n` nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    n: usize,
    steps: Vec<Step>,
    /// True for store-and-forward schedules (REX): lowering inserts
    /// pack/unpack memcpy around every transfer, and the bytes in each op
    /// are aggregates rather than pattern entries.
    pub store_and_forward: bool,
}

impl Schedule {
    /// An empty schedule over `n` nodes.
    pub fn new(n: usize) -> Schedule {
        Schedule {
            n,
            steps: Vec::new(),
            store_and_forward: false,
        }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The steps, in execution order.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// Number of steps.
    pub fn num_steps(&self) -> usize {
        self.steps.len()
    }

    /// Append a step.
    pub fn push_step(&mut self, step: Step) {
        self.steps.push(step);
    }

    /// Append a step, dropping it if empty (the irregular schedulers skip
    /// steps in which nobody communicates).
    pub fn push_step_nonempty(&mut self, step: Step) {
        if !step.ops.is_empty() {
            self.steps.push(step);
        }
    }

    /// Basic structural checks: node ids in range, no self-messages.
    pub fn check_nodes(&self) -> Result<(), ScheduleError> {
        for (s, step) in self.steps.iter().enumerate() {
            for op in &step.ops {
                let (a, b) = op.endpoints();
                for node in [a, b] {
                    if node >= self.n {
                        return Err(ScheduleError::BadNode { step: s, node });
                    }
                }
                if a == b {
                    return Err(ScheduleError::SelfMessage { step: s, node: a });
                }
            }
        }
        Ok(())
    }

    /// Check that within every step each node takes part in at most one op
    /// (true for the pairwise-style algorithms; deliberately false for the
    /// linear ones, whose receiver serializes a whole step).
    pub fn check_pairwise_disjoint(&self) -> Result<(), ScheduleError> {
        for (s, step) in self.steps.iter().enumerate() {
            let mut seen = vec![false; self.n];
            for op in &step.ops {
                let (a, b) = op.endpoints();
                for node in [a, b] {
                    if seen[node] {
                        return Err(ScheduleError::NodeConflict { step: s, node });
                    }
                    seen[node] = true;
                }
            }
        }
        Ok(())
    }

    /// Check that the schedule moves exactly the bytes `pattern` requires
    /// for every ordered pair. Not applicable to store-and-forward
    /// schedules, which move aggregated data.
    pub fn check_coverage(&self, pattern: &Pattern) -> Result<(), ScheduleError> {
        assert!(
            !self.store_and_forward,
            "coverage validation does not apply to store-and-forward schedules"
        );
        let n = self.n;
        let mut moved = vec![0u64; n * n];
        for step in &self.steps {
            for op in &step.ops {
                match *op {
                    CommOp::Exchange {
                        a,
                        b,
                        bytes_ab,
                        bytes_ba,
                    } => {
                        moved[a * n + b] += bytes_ab;
                        moved[b * n + a] += bytes_ba;
                    }
                    CommOp::Send { from, to, bytes } => {
                        moved[from * n + to] += bytes;
                    }
                }
            }
        }
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let expected = pattern.get(i, j);
                let actual = moved[i * n + j];
                if expected != actual {
                    return Err(ScheduleError::Coverage {
                        from: i,
                        to: j,
                        expected,
                        actual,
                    });
                }
            }
        }
        Ok(())
    }

    /// Per-step count of operations that cross the fat-tree root — the
    /// quantity BEX balances (§3.4: PEX clumps all-global steps; BEX spreads
    /// them evenly).
    pub fn root_crossings_per_step(&self, tree: &FatTree) -> Vec<usize> {
        self.steps
            .iter()
            .map(|step| {
                step.ops
                    .iter()
                    .filter(|op| {
                        let (a, b) = op.endpoints();
                        tree.crosses_root(a, b)
                    })
                    .count()
            })
            .collect()
    }

    /// Total operations across all steps.
    pub fn total_ops(&self) -> usize {
        self.steps.iter().map(|s| s.ops.len()).sum()
    }

    /// Total bytes the schedule moves.
    pub fn total_bytes(&self) -> u64 {
        self.steps
            .iter()
            .flat_map(|s| s.ops.iter())
            .map(|op| op.bytes())
            .sum()
    }

    /// Per-step count of idle nodes (nodes not participating), the cost the
    /// greedy scheduler minimizes.
    pub fn idle_per_step(&self) -> Vec<usize> {
        self.steps
            .iter()
            .map(|s| self.n - s.participants(self.n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xchg(a: usize, b: usize, bytes: u64) -> CommOp {
        CommOp::Exchange {
            a,
            b,
            bytes_ab: bytes,
            bytes_ba: bytes,
        }
    }

    #[test]
    fn coverage_accepts_exact_schedule() {
        let p = Pattern::complete_exchange(4, 10);
        let mut s = Schedule::new(4);
        for j in 1..4usize {
            let mut step = Step::default();
            for i in 0..4usize {
                let k = i ^ j;
                if i < k {
                    step.ops.push(xchg(i, k, 10));
                }
            }
            s.push_step(step);
        }
        s.check_nodes().unwrap();
        s.check_pairwise_disjoint().unwrap();
        s.check_coverage(&p).unwrap();
        assert_eq!(s.total_bytes(), p.total_bytes());
    }

    #[test]
    fn coverage_rejects_missing_pair() {
        let p = Pattern::complete_exchange(4, 10);
        let mut s = Schedule::new(4);
        s.push_step(Step {
            ops: vec![xchg(0, 1, 10)],
        });
        let err = s.check_coverage(&p).unwrap_err();
        assert!(matches!(err, ScheduleError::Coverage { .. }));
    }

    #[test]
    fn disjoint_check_catches_conflicts() {
        let mut s = Schedule::new(4);
        s.push_step(Step {
            ops: vec![xchg(0, 1, 10), xchg(1, 2, 10)],
        });
        let err = s.check_pairwise_disjoint().unwrap_err();
        assert_eq!(err, ScheduleError::NodeConflict { step: 0, node: 1 });
    }

    #[test]
    fn bad_node_detected() {
        let mut s = Schedule::new(4);
        s.push_step(Step {
            ops: vec![CommOp::Send {
                from: 0,
                to: 9,
                bytes: 1,
            }],
        });
        assert!(matches!(
            s.check_nodes().unwrap_err(),
            ScheduleError::BadNode { node: 9, .. }
        ));
    }

    #[test]
    fn errors_render_with_stable_codes() {
        let e = ScheduleError::NodeConflict { step: 0, node: 1 };
        assert_eq!(e.code(), "V010");
        assert_eq!(e.to_string(), "V010: node 1 appears twice in step 0");
        let missing = ScheduleError::Coverage {
            from: 0,
            to: 1,
            expected: 10,
            actual: 0,
        };
        assert_eq!(missing.code(), "V012");
        let excess = ScheduleError::Coverage {
            from: 0,
            to: 1,
            expected: 10,
            actual: 20,
        };
        assert_eq!(excess.code(), "V013");
        assert_eq!(ScheduleError::BadNode { step: 2, node: 9 }.code(), "V001");
        assert!(ScheduleError::SelfMessage { step: 1, node: 3 }
            .to_string()
            .starts_with("V002: "));
    }

    #[test]
    fn self_message_detected() {
        let mut s = Schedule::new(4);
        s.push_step(Step {
            ops: vec![CommOp::Send {
                from: 2,
                to: 2,
                bytes: 8,
            }],
        });
        assert_eq!(
            s.check_nodes().unwrap_err(),
            ScheduleError::SelfMessage { step: 0, node: 2 }
        );
    }

    #[test]
    fn idle_and_participants() {
        let mut s = Schedule::new(8);
        s.push_step(Step {
            ops: vec![xchg(0, 1, 1), xchg(2, 3, 1)],
        });
        assert_eq!(s.idle_per_step(), vec![4]);
        assert_eq!(s.steps()[0].participants(8), 4);
    }

    #[test]
    fn empty_steps_dropped_by_nonempty_push() {
        let mut s = Schedule::new(4);
        s.push_step_nonempty(Step::default());
        s.push_step_nonempty(Step {
            ops: vec![xchg(0, 1, 1)],
        });
        assert_eq!(s.num_steps(), 1);
    }

    #[test]
    fn root_crossings_counted_per_step() {
        let tree = FatTree::new(8);
        let mut s = Schedule::new(8);
        s.push_step(Step {
            ops: vec![xchg(0, 1, 1), xchg(4, 5, 1)],
        });
        s.push_step(Step {
            ops: vec![xchg(0, 4, 1), xchg(1, 5, 1)],
        });
        assert_eq!(s.root_crossings_per_step(&tree), vec![0, 2]);
    }
}
