//! One-to-all broadcast algorithms (paper §3.6).
//!
//! * [`lib_linear`] — Linear Broadcast (LIB): the source sends the message
//!   to every other processor one by one; N−1 serialized steps.
//! * [`reb`] — Recursive Broadcast (REB, Figure 9): lg N doubling steps; the
//!   set of informed processors doubles each step. Unlike the system
//!   broadcast, REB can target any subset ("selective broadcast"), e.g. one
//!   mesh row.
//! * The *system* broadcast is not a schedule — it is a machine primitive
//!   (the whole partition participates); see
//!   [`cm5_sim::Op::SystemBcast`] and [`crate::exec::broadcast_programs`].

use crate::schedule::{CommOp, Schedule, Step};

/// Which broadcast implementation to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BroadcastAlg {
    /// Linear Broadcast (LIB).
    Linear,
    /// Recursive Broadcast (REB).
    Recursive,
    /// The CMMD system broadcast primitive.
    System,
}

impl BroadcastAlg {
    /// All three, in the paper's order.
    pub const ALL: [BroadcastAlg; 3] = [
        BroadcastAlg::Linear,
        BroadcastAlg::Recursive,
        BroadcastAlg::System,
    ];

    /// The paper's name.
    pub fn name(&self) -> &'static str {
        match self {
            BroadcastAlg::Linear => "LIB",
            BroadcastAlg::Recursive => "REB",
            BroadcastAlg::System => "System",
        }
    }
}

/// Linear Broadcast: `root` sends `bytes` to every other node in ascending
/// order, one step per destination (N−1 steps).
pub fn lib_linear(n: usize, root: usize, bytes: u64) -> Schedule {
    assert!(n >= 2 && root < n, "need n>=2 and root<n");
    let mut schedule = Schedule::new(n);
    for dst in 0..n {
        if dst == root {
            continue;
        }
        schedule.push_step(Step {
            ops: vec![CommOp::Send {
                from: root,
                to: dst,
                bytes,
            }],
        });
    }
    schedule
}

/// REB partner relationship at a step: with virtual numbering `v = me ^
/// root`, at step `j ∈ 1..=lg N` (`distance = N/2^j`) every informed node
/// `v ≡ 0 (mod 2·distance)` sends to `v + distance`.
///
/// Returns the schedule of lg N steps.
pub fn reb(n: usize, root: usize, bytes: u64) -> Schedule {
    assert!(
        n >= 2 && n.is_power_of_two(),
        "REB requires a power-of-two node count, got {n}"
    );
    assert!(root < n, "root {root} out of range");
    let mut schedule = Schedule::new(n);
    let mut distance = n / 2;
    while distance >= 1 {
        let mut step = Step::default();
        let mut v = 0;
        while v + distance < n {
            // Virtual sender v (a multiple of 2·distance) informs
            // v + distance; physical ids are XOR-relabelled by the root.
            step.ops.push(CommOp::Send {
                from: v ^ root,
                to: (v + distance) ^ root,
                bytes,
            });
            v += 2 * distance;
        }
        schedule.push_step(step);
        distance /= 2;
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lib_has_n_minus_1_serial_steps() {
        let s = lib_linear(8, 0, 1024);
        assert_eq!(s.num_steps(), 7);
        for (i, step) in s.steps().iter().enumerate() {
            assert_eq!(step.ops.len(), 1);
            assert_eq!(step.ops[0].endpoints(), (0, i + 1));
        }
    }

    #[test]
    fn lib_from_nonzero_root() {
        let s = lib_linear(4, 2, 10);
        let dsts: Vec<usize> = s.steps().iter().map(|st| st.ops[0].endpoints().1).collect();
        assert_eq!(dsts, vec![0, 1, 3]);
    }

    /// Figure 9's doubling pattern from root 0 on 8 nodes:
    /// step 1: 0→4; step 2: 0→2, 4→6; step 3: 0→1, 2→3, 4→5, 6→7.
    #[test]
    fn reb_doubling_from_zero() {
        let s = reb(8, 0, 64);
        assert_eq!(s.num_steps(), 3);
        let expect: [&[(usize, usize)]; 3] = [
            &[(0, 4)],
            &[(0, 2), (4, 6)],
            &[(0, 1), (2, 3), (4, 5), (6, 7)],
        ];
        for (i, step) in s.steps().iter().enumerate() {
            let pairs: Vec<(usize, usize)> = step.ops.iter().map(|op| op.endpoints()).collect();
            assert_eq!(pairs, expect[i], "step {}", i + 1);
        }
    }

    /// Every node must receive exactly once, senders must already be
    /// informed, and the informed set doubles.
    #[test]
    fn reb_correct_for_any_root() {
        for n in [2usize, 4, 8, 16, 64] {
            for root in [0, 1, n / 2, n - 1] {
                let s = reb(n, root, 1);
                let mut informed = vec![false; n];
                informed[root] = true;
                for step in s.steps() {
                    let mut newly = Vec::new();
                    for op in &step.ops {
                        let (from, to) = op.endpoints();
                        assert!(
                            informed[from],
                            "n={n} root={root}: {from} sent before informed"
                        );
                        assert!(!informed[to], "n={n} root={root}: {to} informed twice");
                        newly.push(to);
                    }
                    for t in newly {
                        informed[t] = true;
                    }
                }
                assert!(
                    informed.iter().all(|&i| i),
                    "n={n} root={root}: someone missed"
                );
            }
        }
    }

    #[test]
    fn reb_steps_disjoint() {
        for n in [4usize, 32, 256] {
            reb(n, 3 % n, 1).check_pairwise_disjoint().unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn reb_rejects_non_power_of_two() {
        reb(6, 0, 1);
    }
}
