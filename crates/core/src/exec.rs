//! Executing schedules on the simulated machine.
//!
//! Two paths:
//!
//! * **Op lowering** ([`lower`]): turn a [`Schedule`] into per-node
//!   [`OpProgram`]s — the cheap path the figures/tables use. Exchanges
//!   follow the paper's ordering rules (Figure 2 for direct exchanges:
//!   lower node receives first; Figure 3 for store-and-forward: lower node
//!   packs and sends first), and store-and-forward schedules charge
//!   pack/unpack memcpys.
//! * **Payload execution** ([`complete_exchange_payload`],
//!   [`broadcast_payload`]): run the same algorithms with *real bytes* over
//!   the CMMD thread API, so data movement (including REX's recursive
//!   reshuffle) is verified end to end.

use bytes::{BufMut, Bytes, BytesMut};
use cm5_sim::{CmmdNode, MachineParams, Op, OpProgram, SimReport, Simulation};

use crate::broadcast::{lib_linear, reb, BroadcastAlg};
use crate::regular::{bex_partner, rex_partner, ExchangeAlg};
use crate::schedule::{CommOp, Schedule};

/// Options for [`lower_with`].
#[derive(Debug, Clone, Default)]
pub struct LowerOptions {
    /// Insert a control-network barrier between steps. The paper's codes
    /// rely on blocking sends alone for step synchronization (the default);
    /// the barrier variant exists as an ablation.
    pub barrier_between_steps: bool,
    /// Lower sends as *non-blocking* (`Op::Isend`) with a final `WaitAll`
    /// per node — §3.1's "if asynchronous (or non-blocking) communication
    /// is allowed, processors need not wait for their messages to be
    /// received in step i in order to proceed to step i+1". Rendezvous
    /// semantics are preserved; only the sender-side blocking is removed.
    pub async_sends: bool,
}

/// Lower a schedule to per-node op programs with default options.
pub fn lower(schedule: &Schedule) -> Vec<OpProgram> {
    lower_with(schedule, &LowerOptions::default())
}

/// A lowered schedule plus per-op provenance, the metadata the static
/// certifier ([`cm5-verify`]'s abstract interpreter) needs to report
/// per-step critical paths: `step_of[node][i]` is the schedule step that
/// produced op `i` of `programs[node]`. The trailing `WaitAll` of async
/// lowering belongs to no step and maps to `schedule.num_steps()`.
#[derive(Debug, Clone)]
pub struct LoweredMeta {
    /// Per-node op programs, identical to [`lower_with`]'s output.
    pub programs: Vec<OpProgram>,
    /// Schedule-step provenance of every op, parallel to `programs`.
    pub step_of: Vec<Vec<usize>>,
    /// Number of schedule steps the programs were lowered from.
    pub num_steps: usize,
}

/// Lower a schedule to per-node op programs.
pub fn lower_with(schedule: &Schedule, opts: &LowerOptions) -> Vec<OpProgram> {
    lower_annotated(schedule, opts).programs
}

/// Lower a schedule, keeping the op → schedule-step provenance.
pub fn lower_annotated(schedule: &Schedule, opts: &LowerOptions) -> LoweredMeta {
    let n = schedule.n();
    let saf = schedule.store_and_forward;
    let send_op = |to: usize, bytes: u64, tag: u32| -> Op {
        if opts.async_sends {
            Op::Isend { to, bytes, tag }
        } else {
            Op::Send { to, bytes, tag }
        }
    };
    // Build (op, step) pairs in lockstep so the provenance cannot drift
    // from the program.
    let mut tagged: Vec<Vec<(Op, usize)>> = vec![Vec::new(); n];
    for (s, step) in schedule.steps().iter().enumerate() {
        let tag = s as u32;
        for op in &step.ops {
            match *op {
                CommOp::Send { from, to, bytes } => {
                    if saf {
                        tagged[from].push((Op::Memcpy { bytes }, s));
                    }
                    tagged[from].push((send_op(to, bytes, tag), s));
                    tagged[to].push((Op::Recv { from, tag }, s));
                    if saf {
                        tagged[to].push((Op::Memcpy { bytes }, s));
                    }
                }
                CommOp::Exchange {
                    a,
                    b,
                    bytes_ab,
                    bytes_ba,
                } => {
                    if saf {
                        // Figure 3 ordering: the lower node packs and sends
                        // first; the higher receives, unpacks, packs, sends.
                        tagged[a].push((Op::Memcpy { bytes: bytes_ab }, s));
                        tagged[a].push((send_op(b, bytes_ab, tag), s));
                        tagged[a].push((Op::Recv { from: b, tag }, s));
                        tagged[a].push((Op::Memcpy { bytes: bytes_ba }, s));
                        tagged[b].push((Op::Recv { from: a, tag }, s));
                        tagged[b].push((Op::Memcpy { bytes: bytes_ab }, s));
                        tagged[b].push((Op::Memcpy { bytes: bytes_ba }, s));
                        tagged[b].push((send_op(a, bytes_ba, tag), s));
                    } else {
                        // Figure 2 ordering: the lower node receives first.
                        tagged[a].push((Op::Recv { from: b, tag }, s));
                        tagged[a].push((send_op(b, bytes_ab, tag), s));
                        tagged[b].push((send_op(a, bytes_ba, tag), s));
                        tagged[b].push((Op::Recv { from: a, tag }, s));
                    }
                }
            }
        }
        if opts.barrier_between_steps {
            for prog in tagged.iter_mut() {
                prog.push((Op::Barrier, s));
            }
        }
    }
    if opts.async_sends {
        for prog in tagged.iter_mut() {
            prog.push((Op::WaitAll, schedule.num_steps()));
        }
    }
    let mut programs: Vec<OpProgram> = Vec::with_capacity(n);
    let mut step_of: Vec<Vec<usize>> = Vec::with_capacity(n);
    for prog in tagged {
        let (ops, steps): (Vec<Op>, Vec<usize>) = prog.into_iter().unzip();
        programs.push(ops);
        step_of.push(steps);
    }
    LoweredMeta {
        programs,
        step_of,
        num_steps: schedule.num_steps(),
    }
}

/// Lower and run a schedule on a fresh simulation with `params`.
pub fn run_schedule(
    schedule: &Schedule,
    params: &MachineParams,
) -> Result<SimReport, cm5_sim::SimError> {
    run_schedule_jobs(schedule, params, 1)
}

/// [`run_schedule`] on the windowed engine at `sim_jobs` workers
/// (1 = serial engine; results are bit-identical across values).
pub fn run_schedule_jobs(
    schedule: &Schedule,
    params: &MachineParams,
    sim_jobs: usize,
) -> Result<SimReport, cm5_sim::SimError> {
    let sim = Simulation::new(schedule.n(), params.clone()).sim_jobs(sim_jobs);
    sim.run_ops(&lower(schedule))
}

/// Per-node op programs for a complete exchange of `bytes` per pair.
pub fn exchange_programs(alg: ExchangeAlg, n: usize, bytes: u64) -> Vec<OpProgram> {
    lower(&alg.schedule(n, bytes))
}

/// Per-node op programs for a one-to-all broadcast of `bytes` from `root`.
pub fn broadcast_programs(alg: BroadcastAlg, n: usize, root: usize, bytes: u64) -> Vec<OpProgram> {
    match alg {
        BroadcastAlg::Linear => lower(&lib_linear(n, root, bytes)),
        BroadcastAlg::Recursive => lower(&reb(n, root, bytes)),
        BroadcastAlg::System => vec![vec![Op::SystemBcast { root, bytes }]; n],
    }
}

/// Run a complete exchange carrying **real payloads** on the CMMD thread
/// API. `blocks[j]` is this node's data destined for node `j`
/// (`blocks[me]` is returned unchanged); the result's entry `j` is the
/// block node `j` sent to this node.
///
/// LEX/PEX/BEX move each block directly; REX performs the paper's
/// store-and-forward recursive reshuffle, forwarding tagged blocks through
/// intermediate nodes — so this function is the correctness proof for the
/// REX data routing that the op-mode schedule only costs.
#[allow(clippy::needless_range_loop)] // node ids are semantic indices here
pub fn complete_exchange_payload(
    node: &CmmdNode,
    alg: ExchangeAlg,
    blocks: Vec<Bytes>,
) -> Vec<Bytes> {
    let n = node.nodes();
    let me = node.id();
    assert_eq!(blocks.len(), n, "one block per destination");
    let mut out: Vec<Bytes> = vec![Bytes::new(); n];
    out[me] = blocks[me].clone();
    match alg {
        ExchangeAlg::Lex => {
            for receiver in 0..n {
                let tag = receiver as u32;
                if receiver == me {
                    for sender in 0..n {
                        if sender != me {
                            out[sender] = node.recv_block(sender, tag);
                        }
                    }
                } else {
                    node.send_block(receiver, tag, blocks[receiver].clone());
                }
            }
        }
        ExchangeAlg::Pex => {
            for j in 1..n {
                let partner = me ^ j;
                out[partner] = node.swap(partner, j as u32, blocks[partner].clone());
            }
        }
        ExchangeAlg::Bex => {
            for j in 1..n {
                let partner = bex_partner(me, j, n);
                out[partner] = node.swap(partner, j as u32, blocks[partner].clone());
            }
        }
        ExchangeAlg::Rex => {
            rex_payload(node, blocks, &mut out);
        }
    }
    out
}

/// The store-and-forward payload path of REX. Blocks travel as
/// `(src, dst, payload)` triples; each step ships every held triple whose
/// destination lies in the partner's half of the current group.
fn rex_payload(node: &CmmdNode, blocks: Vec<Bytes>, out: &mut [Bytes]) {
    let n = node.nodes();
    let me = node.id();
    assert!(
        n.is_power_of_two(),
        "REX requires a power-of-two node count"
    );
    let mut held: Vec<(u32, u32, Bytes)> = blocks
        .into_iter()
        .enumerate()
        .filter(|&(d, _)| d != me)
        .map(|(d, b)| (me as u32, d as u32, b))
        .collect();
    let steps = n.trailing_zeros();
    for step in 0..steps {
        let k = n >> step;
        let partner = rex_partner(me, step, n);
        let i_am_low = me % k < k / 2;
        let (to_send, to_keep): (Vec<_>, Vec<_>) = held
            .into_iter()
            .partition(|&(_, d, _)| ((d as usize % k) < k / 2) != i_am_low);
        held = to_keep;
        let tag = step;
        // Figure 3 ordering: lower node packs+sends first.
        let received = if me < partner {
            let packed = pack_triples(&to_send);
            node.memcpy(packed.len() as u64);
            node.send_block(partner, tag, packed);
            let got = node.recv_block(partner, tag);
            node.memcpy(got.len() as u64);
            got
        } else {
            let got = node.recv_block(partner, tag);
            node.memcpy(got.len() as u64);
            let packed = pack_triples(&to_send);
            node.memcpy(packed.len() as u64);
            node.send_block(partner, tag, packed);
            got
        };
        held.extend(unpack_triples(&received));
    }
    for (src, dst, payload) in held {
        debug_assert_eq!(dst as usize, me, "REX routing delivered a stray block");
        out[src as usize] = payload;
    }
}

pub(crate) fn pack_triples(triples: &[(u32, u32, Bytes)]) -> Bytes {
    let total: usize = triples.iter().map(|(_, _, b)| 12 + b.len()).sum();
    let mut buf = BytesMut::with_capacity(total);
    for (src, dst, payload) in triples {
        buf.put_u32_le(*src);
        buf.put_u32_le(*dst);
        buf.put_u32_le(payload.len() as u32);
        buf.put_slice(payload);
    }
    buf.freeze()
}

pub(crate) fn unpack_triples(mut data: &[u8]) -> Vec<(u32, u32, Bytes)> {
    let mut out = Vec::new();
    while data.len() >= 12 {
        let src = u32::from_le_bytes(data[0..4].try_into().expect("4 bytes"));
        let dst = u32::from_le_bytes(data[4..8].try_into().expect("4 bytes"));
        let len = u32::from_le_bytes(data[8..12].try_into().expect("4 bytes")) as usize;
        let payload = Bytes::copy_from_slice(&data[12..12 + len]);
        data = &data[12 + len..];
        out.push((src, dst, payload));
    }
    debug_assert!(data.is_empty(), "trailing bytes in packed triples");
    out
}

/// Execute an irregular schedule with **real payloads** on the CMMD thread
/// API. Every node calls this with the same `schedule`; `outgoing[j]` is
/// this node's payload for node `j` (ignored unless the schedule actually
/// sends `me → j`). Returns `incoming[j]` = payload received from `j`
/// (`None` where the schedule has no `j → me` message).
///
/// This is how the distributed CG and Euler solvers run their halo
/// exchanges through any of the paper's irregular schedulers.
pub fn pattern_exchange_payload(
    node: &CmmdNode,
    schedule: &crate::schedule::Schedule,
    outgoing: &[Option<Bytes>],
) -> Vec<Option<Bytes>> {
    let me = node.id();
    let n = node.nodes();
    assert_eq!(schedule.n(), n, "schedule sized for a different machine");
    assert_eq!(outgoing.len(), n, "one outgoing slot per node");
    let mut incoming: Vec<Option<Bytes>> = vec![None; n];
    let payload_for = |dst: usize| -> Bytes {
        outgoing[dst]
            .clone()
            .unwrap_or_else(|| panic!("schedule sends {me}->{dst} but no payload provided"))
    };
    for (s, step) in schedule.steps().iter().enumerate() {
        let tag = s as u32;
        for op in &step.ops {
            match *op {
                CommOp::Exchange { a, b, .. } => {
                    if a == me {
                        // Lower node receives first (Figure 2).
                        incoming[b] = Some(node.recv_block(b, tag));
                        node.send_block(b, tag, payload_for(b));
                    } else if b == me {
                        node.send_block(a, tag, payload_for(a));
                        incoming[a] = Some(node.recv_block(a, tag));
                    }
                }
                CommOp::Send { from, to, .. } => {
                    if from == me {
                        node.send_block(to, tag, payload_for(to));
                    } else if to == me {
                        incoming[from] = Some(node.recv_block(from, tag));
                    }
                }
            }
        }
    }
    incoming
}

/// Run a one-to-all broadcast carrying a **real payload**: every node calls
/// this; `root`'s `data` is returned on all nodes.
pub fn broadcast_payload(node: &CmmdNode, alg: BroadcastAlg, root: usize, data: Bytes) -> Bytes {
    let n = node.nodes();
    let me = node.id();
    match alg {
        BroadcastAlg::Linear => {
            if me == root {
                for dst in 0..n {
                    if dst != root {
                        node.send_block(dst, 0, data.clone());
                    }
                }
                data
            } else {
                node.recv_block(root, 0)
            }
        }
        BroadcastAlg::Recursive => {
            assert!(
                n.is_power_of_two(),
                "REB requires a power-of-two node count"
            );
            let v = me ^ root;
            let mut have = if me == root { Some(data) } else { None };
            let mut distance = n / 2;
            let mut stepno = 0u32;
            while distance >= 1 {
                if v.is_multiple_of(distance) {
                    if (v / distance).is_multiple_of(2) {
                        let payload = have.clone().expect("REB sender must be informed");
                        node.send_block((v + distance) ^ root, stepno, payload);
                    } else if have.is_none() {
                        have = Some(node.recv_block((v - distance) ^ root, stepno));
                    }
                }
                distance /= 2;
                stepno += 1;
            }
            have.expect("REB must inform every node")
        }
        BroadcastAlg::System => node.system_bcast(root, data),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm5_sim::ANY_TAG;

    /// `lower_annotated` must tag every op with its schedule step, in
    /// lockstep with the programs `lower_with` produces — the provenance
    /// the static certifier's per-step transcript depends on.
    #[test]
    fn lower_annotated_provenance_is_in_lockstep() {
        for opts in [
            LowerOptions::default(),
            LowerOptions {
                barrier_between_steps: true,
                ..Default::default()
            },
            LowerOptions {
                async_sends: true,
                ..Default::default()
            },
        ] {
            let schedule = crate::regular::pex(8, 256);
            let meta = lower_annotated(&schedule, &opts);
            assert_eq!(meta.programs, lower_with(&schedule, &opts));
            assert_eq!(meta.num_steps, schedule.num_steps());
            for (node, prog) in meta.programs.iter().enumerate() {
                assert_eq!(meta.step_of[node].len(), prog.len(), "node {node}");
                // Steps are non-decreasing along each program; the trailing
                // WaitAll of async lowering is tagged one past the last step.
                let mut prev = 0;
                for &s in &meta.step_of[node] {
                    assert!(s >= prev, "node {node}: step regressed");
                    assert!(s <= schedule.num_steps());
                    prev = s;
                }
                if opts.async_sends {
                    assert_eq!(*meta.step_of[node].last().unwrap(), schedule.num_steps());
                }
            }
        }
    }

    #[test]
    fn lower_simple_send() {
        let mut s = Schedule::new(2);
        s.push_step(crate::schedule::Step {
            ops: vec![CommOp::Send {
                from: 0,
                to: 1,
                bytes: 64,
            }],
        });
        let progs = lower(&s);
        assert_eq!(
            progs[0],
            vec![Op::Send {
                to: 1,
                bytes: 64,
                tag: 0
            }]
        );
        assert_eq!(progs[1], vec![Op::Recv { from: 0, tag: 0 }]);
    }

    #[test]
    fn lower_exchange_follows_figure_2_ordering() {
        let mut s = Schedule::new(2);
        s.push_step(crate::schedule::Step {
            ops: vec![CommOp::Exchange {
                a: 0,
                b: 1,
                bytes_ab: 10,
                bytes_ba: 20,
            }],
        });
        let progs = lower(&s);
        // Lower node receives first.
        assert_eq!(
            progs[0],
            vec![
                Op::Recv { from: 1, tag: 0 },
                Op::Send {
                    to: 1,
                    bytes: 10,
                    tag: 0
                }
            ]
        );
        assert_eq!(
            progs[1],
            vec![
                Op::Send {
                    to: 0,
                    bytes: 20,
                    tag: 0
                },
                Op::Recv { from: 0, tag: 0 }
            ]
        );
    }

    #[test]
    fn store_and_forward_lowering_adds_memcpys() {
        let s = crate::regular::rex(4, 16);
        let progs = lower(&s);
        let memcpys = progs[0]
            .iter()
            .filter(|op| matches!(op, Op::Memcpy { .. }))
            .count();
        // 2 steps × (pack + unpack) per node.
        assert_eq!(memcpys, 4);
    }

    #[test]
    fn all_exchange_algorithms_run_to_completion() {
        let params = MachineParams::cm5_1992();
        for alg in ExchangeAlg::ALL {
            let r = run_schedule(&alg.schedule(8, 256), &params)
                .unwrap_or_else(|e| panic!("{} failed: {e}", alg.name()));
            assert!(r.makespan.as_nanos() > 0, "{}", alg.name());
            // Direct algorithms deliver 56 messages; REX lgN×N/2×2 = 24.
            match alg {
                ExchangeAlg::Rex => assert_eq!(r.messages, 24),
                _ => assert_eq!(r.messages, 56),
            }
        }
    }

    /// §3.1's hypothetical, made concrete: LEX with non-blocking sends.
    /// Senders no longer stall on the current step's receiver, so adjacent
    /// steps' fan-ins overlap at their edges. The fan-ins still ripple in
    /// step order (a node only serves its receive phase after issuing the
    /// isends of earlier steps), so the win is solid but bounded — the
    /// transfers themselves still serialize at each receiver.
    #[test]
    fn async_sends_fix_lex() {
        let n = 16;
        let bytes = 256;
        let schedule = crate::regular::lex(n, bytes);
        let sim = Simulation::new(n, MachineParams::cm5_1992());
        let sync = sim.run_ops(&lower(&schedule)).unwrap();
        let async_progs = lower_with(
            &schedule,
            &LowerOptions {
                async_sends: true,
                ..Default::default()
            },
        );
        let asynced = sim.run_ops(&async_progs).unwrap();
        assert_eq!(sync.messages, asynced.messages);
        assert_eq!(sync.payload_bytes, asynced.payload_bytes);
        assert!(
            sync.makespan.as_nanos() as f64 > 1.25 * asynced.makespan.as_nanos() as f64,
            "sync {} vs async {}",
            sync.makespan,
            asynced.makespan
        );
    }

    /// Async lowering helps the pairwise algorithms too (both directions of
    /// each exchange overlap), but far less than it helps LEX — PEX was
    /// never sender-serialized.
    #[test]
    fn async_sends_help_pex_less_than_lex() {
        let n = 16;
        let bytes = 256;
        let sim = Simulation::new(n, MachineParams::cm5_1992());
        let gain = |schedule: &Schedule| {
            let sync = sim.run_ops(&lower(schedule)).unwrap().makespan.as_nanos();
            let asy = sim
                .run_ops(&lower_with(
                    schedule,
                    &LowerOptions {
                        async_sends: true,
                        ..Default::default()
                    },
                ))
                .unwrap()
                .makespan
                .as_nanos();
            sync as f64 / asy as f64
        };
        let lex_gain = gain(&crate::regular::lex(n, bytes));
        let pex_gain = gain(&crate::regular::pex(n, bytes));
        assert!(
            lex_gain > pex_gain + 0.2,
            "LEX gain {lex_gain:.2} should clearly exceed PEX gain {pex_gain:.2}"
        );
    }

    #[test]
    fn barrier_option_adds_collectives() {
        let s = crate::regular::pex(4, 8);
        let progs = lower_with(
            &s,
            &LowerOptions {
                barrier_between_steps: true,
                ..Default::default()
            },
        );
        let sim = Simulation::new(4, MachineParams::cm5_1992());
        let r = sim.run_ops(&progs).unwrap();
        assert_eq!(r.collectives, 3);
    }

    #[test]
    fn payload_exchange_all_algorithms_route_correctly() {
        let n = 8;
        let sim = Simulation::new(n, MachineParams::cm5_1992());
        for alg in ExchangeAlg::ALL {
            let (_, results) = sim
                .run_nodes_collect(|node| {
                    let me = node.id();
                    // Block for j: [me, j] repeated — uniquely identifies
                    // source and intended destination.
                    let blocks: Vec<Bytes> = (0..n)
                        .map(|j| Bytes::from(vec![me as u8, j as u8, me as u8 ^ j as u8]))
                        .collect();
                    complete_exchange_payload(node, alg, blocks)
                })
                .unwrap();
            for (me, got) in results.iter().enumerate() {
                for (j, block) in got.iter().enumerate() {
                    assert_eq!(
                        block.as_ref(),
                        &[j as u8, me as u8, j as u8 ^ me as u8],
                        "{}: node {me} got wrong block from {j}",
                        alg.name()
                    );
                }
            }
        }
    }

    #[test]
    fn payload_broadcast_all_algorithms_deliver() {
        let n = 8;
        let sim = Simulation::new(n, MachineParams::cm5_1992());
        for alg in BroadcastAlg::ALL {
            for root in [0usize, 3, 7] {
                let (_, results) = sim
                    .run_nodes_collect(|node| {
                        let data = Bytes::from(vec![0xAB, root as u8, 0xCD]);
                        broadcast_payload(node, alg, root, data)
                    })
                    .unwrap();
                for (me, got) in results.iter().enumerate() {
                    assert_eq!(
                        got.as_ref(),
                        &[0xAB, root as u8, 0xCD],
                        "{} root {root}: node {me} got wrong data",
                        alg.name()
                    );
                }
            }
        }
    }

    #[test]
    fn pattern_payload_exchange_delivers() {
        use crate::irregular::gs;
        use crate::pattern::Pattern;
        let pattern = Pattern::paper_pattern_p(3);
        let schedule = gs(&pattern);
        let n = 8;
        let sim = Simulation::new(n, MachineParams::cm5_1992());
        let (_, results) = sim
            .run_nodes_collect(|node| {
                let me = node.id();
                let outgoing: Vec<Option<Bytes>> = (0..n)
                    .map(|j| {
                        (j != me && pattern.get(me, j) > 0)
                            .then(|| Bytes::from(vec![me as u8, j as u8, 0xEE]))
                    })
                    .collect();
                pattern_exchange_payload(node, &schedule, &outgoing)
            })
            .unwrap();
        for (me, incoming) in results.iter().enumerate() {
            for (j, slot) in incoming.iter().enumerate().take(n) {
                if j == me {
                    continue;
                }
                match (slot, pattern.get(j, me) > 0) {
                    (Some(data), true) => {
                        assert_eq!(data.as_ref(), &[j as u8, me as u8, 0xEE]);
                    }
                    (None, false) => {}
                    (got, expect) => {
                        panic!("node {me} from {j}: got {got:?}, expected msg={expect}")
                    }
                }
            }
        }
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let triples = vec![
            (0u32, 3u32, Bytes::from_static(b"alpha")),
            (7, 1, Bytes::new()),
            (2, 2, Bytes::from_static(b"z")),
        ];
        let packed = pack_triples(&triples);
        let unpacked = unpack_triples(&packed);
        assert_eq!(triples, unpacked);
    }

    #[test]
    fn tags_keep_steps_apart() {
        // Two-step schedule between the same pair: tags prevent cross-step
        // matches even without barriers.
        let mut s = Schedule::new(2);
        for _ in 0..2 {
            s.push_step(crate::schedule::Step {
                ops: vec![CommOp::Exchange {
                    a: 0,
                    b: 1,
                    bytes_ab: 8,
                    bytes_ba: 8,
                }],
            });
        }
        let r = run_schedule(&s, &MachineParams::cm5_1992()).unwrap();
        assert_eq!(r.messages, 4);
        let _ = ANY_TAG;
    }
}
