//! The other regular communication patterns the paper's §3 names.
//!
//! "A regular communication pattern is one in which the pattern of data
//! access is regular and can be detected at compile time; for example
//! **shift**, complete exchange, broadcast etc." — this module supplies the
//! rest of that family (shift, gather, scatter, all-gather), scheduled on
//! the same machinery as the paper's headline algorithms. They round out
//! the library the way the CrOS III system the paper cites did for
//! hypercubes.

use bytes::{Bytes, BytesMut};
use cm5_sim::CmmdNode;

use crate::schedule::{CommOp, Schedule, Step};

/// Circular shift: every node sends `bytes` to `(i + offset) mod n`.
/// One step of n concurrent sends; `offset` is reduced mod n and must not
/// be ≡ 0.
pub fn shift(n: usize, offset: usize, bytes: u64) -> Schedule {
    assert!(n >= 2, "shift needs at least 2 nodes");
    let offset = offset % n;
    assert!(offset != 0, "shift offset must be nonzero mod n");
    let mut schedule = Schedule::new(n);
    let mut step = Step::default();
    for i in 0..n {
        step.ops.push(CommOp::Send {
            from: i,
            to: (i + offset) % n,
            bytes,
        });
    }
    schedule.push_step(step);
    schedule
}

/// Gather: every node sends `bytes` to `root` (one fan-in step — the same
/// serialization LEX suffers, which is why gathers on the CM-5 were slow).
pub fn gather(n: usize, root: usize, bytes: u64) -> Schedule {
    assert!(n >= 2 && root < n);
    let mut schedule = Schedule::new(n);
    let mut step = Step::default();
    for i in 0..n {
        if i != root {
            step.ops.push(CommOp::Send {
                from: i,
                to: root,
                bytes,
            });
        }
    }
    schedule.push_step(step);
    schedule
}

/// Scatter: `root` sends a distinct `bytes`-byte block to every other node
/// (serial, LIB-style).
pub fn scatter(n: usize, root: usize, bytes: u64) -> Schedule {
    assert!(n >= 2 && root < n);
    let mut schedule = Schedule::new(n);
    for i in 0..n {
        if i != root {
            schedule.push_step(Step {
                ops: vec![CommOp::Send {
                    from: root,
                    to: i,
                    bytes,
                }],
            });
        }
    }
    schedule
}

/// All-gather (all-to-all broadcast) by recursive doubling: lg N exchange
/// steps in which each node's accumulated buffer doubles — step `s`
/// exchanges `bytes · 2^s`. Store-and-forward (pack/unpack charged).
pub fn allgather(n: usize, bytes: u64) -> Schedule {
    crate::regular::assert_power_of_two(n, "allgather");
    let mut schedule = Schedule::new(n);
    schedule.store_and_forward = true;
    let steps = n.trailing_zeros();
    for s in 0..steps {
        let dist = 1usize << s;
        let block = bytes << s;
        let mut step = Step::default();
        for i in 0..n {
            let partner = i ^ dist;
            if i < partner {
                step.ops.push(CommOp::Exchange {
                    a: i,
                    b: partner,
                    bytes_ab: block,
                    bytes_ba: block,
                });
            }
        }
        schedule.push_step(step);
    }
    schedule
}

/// Payload-carrying all-gather over the CMMD thread API: every node
/// contributes `mine`; returns all contributions indexed by node id.
/// Recursive doubling with real buffer concatenation — blocks are
/// fixed-size, so reassembly is positional.
pub fn allgather_payload(node: &CmmdNode, mine: Bytes) -> Vec<Bytes> {
    let n = node.nodes();
    let me = node.id();
    assert!(
        n.is_power_of_two(),
        "allgather requires a power-of-two count"
    );
    let block = mine.len();
    // have[j] = Some(block) once known.
    let mut have: Vec<Option<Bytes>> = vec![None; n];
    have[me] = Some(mine);
    // Group of known ids at step s: ids agreeing with me above bit s.
    for s in 0..n.trailing_zeros() {
        let dist = 1usize << s;
        let partner = me ^ dist;
        // Send everything I currently know: my aligned group of 2^s blocks.
        let my_half: Vec<usize> = (0..dist).map(|k| (me & !(dist - 1)) + k).collect();
        let mut buf = BytesMut::with_capacity(dist * block);
        for &j in &my_half {
            buf.extend_from_slice(have[j].as_ref().expect("doubling invariant: block known"));
        }
        node.memcpy(buf.len() as u64);
        let got = node.swap(partner, s, buf.freeze());
        node.memcpy(got.len() as u64);
        assert_eq!(got.len(), dist * block, "step {s}: partner sent wrong size");
        let their_base = partner & !(dist - 1);
        for k in 0..dist {
            have[their_base + k] = Some(got.slice(k * block..(k + 1) * block));
        }
    }
    have.into_iter()
        .map(|b| b.expect("allgather must fill every slot"))
        .collect()
}

/// Payload-carrying circular shift.
pub fn shift_payload(node: &CmmdNode, offset: usize, data: Bytes) -> Bytes {
    let n = node.nodes();
    let me = node.id();
    let offset = offset % n;
    assert!(offset != 0, "shift offset must be nonzero mod n");
    let to = (me + offset) % n;
    let from = (me + n - offset) % n;
    // Deadlock-free ordering mirroring the schedule lowering: nodes whose
    // sender-of-record comes earlier receive first.
    if from < me {
        let got = node.recv_block(from, 0);
        node.send_block(to, 0, data);
        got
    } else {
        node.send_block(to, 0, data);
        node.recv_block(from, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{lower, run_schedule};
    use cm5_sim::{MachineParams, Simulation};

    #[test]
    fn shift_schedule_shape() {
        let s = shift(8, 3, 100);
        assert_eq!(s.num_steps(), 1);
        assert_eq!(s.steps()[0].ops.len(), 8);
        assert_eq!(s.total_bytes(), 800);
        // Every node sends once and receives once.
        let mut sends = [0; 8];
        let mut recvs = [0; 8];
        for op in &s.steps()[0].ops {
            let (f, t) = op.endpoints();
            sends[f] += 1;
            recvs[t] += 1;
        }
        assert!(sends.iter().all(|&c| c == 1));
        assert!(recvs.iter().all(|&c| c == 1));
    }

    #[test]
    fn shift_runs_without_deadlock_all_offsets() {
        // Shift cycles are the classic rendezvous deadlock trap; the
        // lowering's append order must break every cycle, including the
        // even-offset multi-cycle cases.
        let params = MachineParams::cm5_1992();
        for n in [4usize, 8, 12, 16] {
            for offset in 1..n {
                let r = run_schedule(&shift(n, offset, 64), &params)
                    .unwrap_or_else(|e| panic!("n={n} offset={offset}: {e}"));
                assert_eq!(r.messages, n as u64);
            }
        }
    }

    #[test]
    fn shift_payload_rotates_data() {
        let n = 8;
        let sim = Simulation::new(n, MachineParams::cm5_1992());
        for offset in [1usize, 2, 5] {
            let (_, got) = sim
                .run_nodes_collect(|node| {
                    let data = Bytes::from(vec![node.id() as u8; 4]);
                    shift_payload(node, offset, data)
                })
                .unwrap();
            for (me, data) in got.iter().enumerate() {
                let expect = (me + n - offset) % n;
                assert_eq!(data[0] as usize, expect, "offset {offset} node {me}");
            }
        }
    }

    #[test]
    fn gather_fans_into_root() {
        let s = gather(8, 3, 50);
        assert_eq!(s.num_steps(), 1);
        let r = run_schedule(&s, &MachineParams::cm5_1992()).unwrap();
        assert_eq!(r.messages, 7);
        // Fan-in serializes through the root's per-receive software
        // overhead (40 µs) + transfer + delivery latency per message.
        assert!(r.makespan.as_micros_f64() > 7.0 * 50.0);
    }

    #[test]
    fn scatter_is_serial_from_root() {
        let s = scatter(8, 0, 50);
        assert_eq!(s.num_steps(), 7);
        let r = run_schedule(&s, &MachineParams::cm5_1992()).unwrap();
        assert_eq!(r.messages, 7);
    }

    #[test]
    fn allgather_doubles_block_sizes() {
        let s = allgather(8, 100);
        assert_eq!(s.num_steps(), 3);
        let sizes: Vec<u64> = s
            .steps()
            .iter()
            .map(|st| match st.ops[0] {
                CommOp::Exchange { bytes_ab, .. } => bytes_ab,
                _ => panic!("allgather emits exchanges"),
            })
            .collect();
        assert_eq!(sizes, vec![100, 200, 400]);
        assert!(s.store_and_forward);
        let progs = lower(&s);
        assert_eq!(progs.len(), 8);
    }

    #[test]
    fn allgather_payload_collects_everything() {
        let n = 16;
        let sim = Simulation::new(n, MachineParams::cm5_1992());
        let (report, results) = sim
            .run_nodes_collect(|node| {
                let mine = Bytes::from(vec![node.id() as u8, 0xA5, node.id() as u8]);
                allgather_payload(node, mine)
            })
            .unwrap();
        for (me, all) in results.iter().enumerate() {
            assert_eq!(all.len(), n, "node {me}");
            for (j, block) in all.iter().enumerate() {
                assert_eq!(
                    block.as_ref(),
                    &[j as u8, 0xA5, j as u8],
                    "node {me} from {j}"
                );
            }
        }
        // lg 16 = 4 rounds of n/2 pairs × 2 messages.
        assert_eq!(report.messages, 4 * (n as u64 / 2) * 2);
    }

    #[test]
    fn allgather_beats_linear_gather_broadcast() {
        // The doubling all-gather should easily beat gather-then-LIB.
        let params = MachineParams::cm5_1992();
        let n = 32;
        let bytes = 256;
        let ag = run_schedule(&allgather(n, bytes), &params)
            .unwrap()
            .makespan;
        let g = run_schedule(&gather(n, 0, bytes), &params)
            .unwrap()
            .makespan;
        let b = run_schedule(
            &crate::broadcast::lib_linear(n, 0, bytes * n as u64),
            &params,
        )
        .unwrap()
        .makespan;
        assert!(
            ag.as_nanos() < (g.as_nanos() + b.as_nanos()) / 2,
            "allgather {ag} vs gather {g} + linear bcast {b}"
        );
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn shift_rejects_zero_offset() {
        shift(8, 8, 1);
    }
}
