//! Schedule quality metrics.
//!
//! The paper's arguments are all statements about schedule *shape*: how many
//! steps, how the root crossings distribute over steps, how many processors
//! idle. [`ScheduleSummary`] computes them in one pass so benches, tests and
//! the report binary share one definition.

use cm5_sim::FatTree;

use crate::schedule::Schedule;

/// Aggregated shape metrics of a schedule on a given fat tree.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleSummary {
    /// Number of steps.
    pub steps: usize,
    /// Total pairwise operations.
    pub ops: usize,
    /// Total bytes moved (both directions of exchanges).
    pub total_bytes: u64,
    /// Root crossings per step.
    pub crossings: Vec<usize>,
    /// Maximum root crossings in any single step.
    pub max_crossings_per_step: usize,
    /// Steps in which *every* participant crosses the root.
    pub all_global_steps: usize,
    /// Idle processors per step.
    pub idle: Vec<usize>,
    /// Mean idle processors per step.
    pub mean_idle: f64,
}

impl ScheduleSummary {
    /// Compute the summary of `schedule` on `tree`.
    pub fn of(schedule: &Schedule, tree: &FatTree) -> ScheduleSummary {
        let crossings = schedule.root_crossings_per_step(tree);
        let idle = schedule.idle_per_step();
        let max_crossings_per_step = crossings.iter().copied().max().unwrap_or(0);
        let all_global_steps = schedule
            .steps()
            .iter()
            .zip(&crossings)
            .filter(|(step, &c)| !step.ops.is_empty() && c == step.ops.len())
            .count();
        let mean_idle = if idle.is_empty() {
            0.0
        } else {
            idle.iter().sum::<usize>() as f64 / idle.len() as f64
        };
        ScheduleSummary {
            steps: schedule.num_steps(),
            ops: schedule.total_ops(),
            total_bytes: schedule.total_bytes(),
            max_crossings_per_step,
            all_global_steps,
            mean_idle,
            crossings,
            idle,
        }
    }
}

/// Render a schedule as an ASCII step chart: one row per step, one column
/// per node; `↔` marks an exchange, `→`/`←` the two ends of a send, `·`
/// idle. Root-crossing counts are annotated per step. Useful in examples
/// and while debugging schedulers.
///
/// ```
/// use cm5_core::prelude::*;
/// use cm5_sim::FatTree;
///
/// let s = pex(8, 1);
/// let chart = render_schedule(&s, &FatTree::new(8));
/// assert!(chart.lines().count() >= 8);
/// ```
pub fn render_schedule(schedule: &Schedule, tree: &FatTree) -> String {
    use std::fmt::Write as _;
    let n = schedule.n();
    let crossings = schedule.root_crossings_per_step(tree);
    let mut out = String::new();
    write!(out, "step |").expect("write to string");
    for i in 0..n {
        write!(out, "{:>3}", i % 100).expect("write to string");
    }
    writeln!(out, " | globals").expect("write to string");
    for (s, step) in schedule.steps().iter().enumerate() {
        let mut cells = vec!["  ·"; n];
        for op in &step.ops {
            match *op {
                crate::schedule::CommOp::Exchange { a, b, .. } => {
                    cells[a] = "  ↔";
                    cells[b] = "  ↔";
                }
                crate::schedule::CommOp::Send { from, to, .. } => {
                    cells[from] = "  →";
                    cells[to] = "  ←";
                }
            }
        }
        write!(out, "{s:>4} |").expect("write to string");
        for c in cells {
            write!(out, "{c}").expect("write to string");
        }
        writeln!(out, " | {}", crossings[s]).expect("write to string");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regular::{bex, pex};

    #[test]
    fn pex_vs_bex_shape_on_32() {
        let tree = FatTree::new(32);
        let p = ScheduleSummary::of(&pex(32, 1), &tree);
        let b = ScheduleSummary::of(&bex(32, 1), &tree);
        assert_eq!(p.steps, 31);
        assert_eq!(b.steps, 31);
        assert_eq!(p.total_bytes, b.total_bytes);
        // The §3.4 claim, in this topology's terms: PEX runs N/2 = 16
        // consecutive all-global steps; BEX has exactly one.
        assert_eq!(p.all_global_steps, 16);
        assert_eq!(b.all_global_steps, 1);
    }

    #[test]
    fn render_marks_every_participant() {
        let tree = FatTree::new(8);
        let p = crate::pattern::Pattern::paper_pattern_p(1);
        let chart = render_schedule(&crate::irregular::gs(&p), &tree);
        // 6 steps (Table 10) + header line.
        assert_eq!(chart.lines().count(), 7);
        // Step 3 (index 2) contains both sends and an idle node.
        let line3 = chart.lines().nth(3).unwrap();
        assert!(line3.contains('→') && line3.contains('←'));
        // Fully-paired step 1 has no idle cells.
        let line1 = chart.lines().nth(1).unwrap();
        assert!(!line1.contains('·'));
    }

    #[test]
    fn idle_metrics() {
        let mut p = crate::pattern::Pattern::new(8);
        p.set(0, 1, 10);
        p.set(1, 0, 10);
        let s = crate::irregular::ps(&p);
        let sum = ScheduleSummary::of(&s, &FatTree::new(8));
        assert_eq!(sum.steps, 1);
        assert_eq!(sum.idle, vec![6]);
        assert_eq!(sum.mean_idle, 6.0);
    }
}
