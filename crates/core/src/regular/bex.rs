//! Balanced Exchange (BEX, paper §3.4, Figure 4).
//!
//! PEX's schedule sends *every* processor across the fat-tree root in the
//! same steps, saturating the thinned upper links. BEX keeps the pairwise
//! structure but maps each processor to a *virtual* number
//! `virtual = (me + 1) mod N` before applying the XOR pairing, which
//! staggers the pairs so that each step mixes local and remote exchanges —
//! "messages passing through the root of the fat-tree are optimally
//! distributed across each step".

use super::assert_power_of_two;
use crate::schedule::{CommOp, Schedule, Step};

/// BEX partner of `me` in step `j` on `n` nodes (Figure 4):
/// `node = ((me+1 mod n) XOR j) − 1`, with −1 wrapping to `n−1`.
pub fn bex_partner(me: usize, j: usize, n: usize) -> usize {
    let virtual_no = (me + 1) % n;
    let x = virtual_no ^ j;
    if x == 0 {
        n - 1
    } else {
        x - 1
    }
}

/// Generate the BEX schedule: N−1 steps of disjoint pairwise exchanges of
/// `bytes` per direction, with root crossings spread across steps.
pub fn bex(n: usize, bytes: u64) -> Schedule {
    assert_power_of_two(n, "BEX");
    let mut schedule = Schedule::new(n);
    for j in 1..n {
        let mut step = Step::default();
        for me in 0..n {
            let partner = bex_partner(me, j, n);
            if me < partner {
                step.ops.push(CommOp::Exchange {
                    a: me,
                    b: partner,
                    bytes_ab: bytes,
                    bytes_ba: bytes,
                });
            }
        }
        schedule.push_step(step);
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::Pattern;
    use crate::regular::pex;
    use cm5_sim::FatTree;

    #[test]
    fn partner_is_an_involution() {
        for n in [2usize, 4, 8, 32, 256] {
            for j in 1..n {
                for me in 0..n {
                    let p = bex_partner(me, j, n);
                    assert_ne!(p, me, "n={n} j={j} me={me}");
                    assert_eq!(bex_partner(p, j, n), me, "n={n} j={j} me={me}");
                }
            }
        }
    }

    /// Table 4 of the paper: the 8-processor BEX schedule, derived from
    /// Figure 4's virtual-number mapping. Each step mixes local and global
    /// pairs (except the unavoidable all-global step j=4).
    #[test]
    fn paper_table_4() {
        let s = bex(8, 1);
        assert_eq!(s.num_steps(), 7);
        let expect: [&[(usize, usize)]; 7] = [
            &[(0, 7), (1, 2), (3, 4), (5, 6)], // j=1
            &[(0, 2), (1, 7), (3, 5), (4, 6)], // j=2
            &[(0, 1), (2, 7), (3, 6), (4, 5)], // j=3
            &[(0, 4), (1, 5), (2, 6), (3, 7)], // j=4
            &[(0, 3), (1, 6), (2, 5), (4, 7)], // j=5
            &[(0, 6), (1, 3), (2, 4), (5, 7)], // j=6
            &[(0, 5), (1, 4), (2, 3), (6, 7)], // j=7
        ];
        for (si, step) in s.steps().iter().enumerate() {
            let mut pairs: Vec<(usize, usize)> = step.ops.iter().map(|op| op.endpoints()).collect();
            pairs.sort_unstable();
            assert_eq!(pairs, expect[si], "step {}", si + 1);
        }
    }

    #[test]
    fn disjoint_and_covering() {
        for n in [2, 4, 8, 16, 32, 64] {
            let s = bex(n, 256);
            s.check_nodes().unwrap();
            s.check_pairwise_disjoint().unwrap();
            s.check_coverage(&Pattern::complete_exchange(n, 256))
                .unwrap();
        }
    }

    /// The point of BEX: same total root crossings as PEX, but spread — PEX
    /// runs N/2 consecutive *all*-global steps (every processor crossing the
    /// root at once), while BEX has exactly one unavoidable all-global step
    /// (the rotation can't help when XOR flips the top bit for everyone) and
    /// carries the rest as a small per-step mix. Variance across steps drops
    /// accordingly.
    #[test]
    fn root_crossings_spread_versus_pex() {
        for n in [8usize, 32, 64] {
            let tree = FatTree::new(n);
            let b = bex(n, 1).root_crossings_per_step(&tree);
            let p = pex(n, 1).root_crossings_per_step(&tree);
            assert_eq!(
                b.iter().sum::<usize>(),
                p.iter().sum::<usize>(),
                "same total globals (n={n})"
            );
            let all_global = |v: &[usize]| v.iter().filter(|&&c| c == n / 2).count();
            // PEX is all-global in every step whose XOR distance leaves the
            // root-level group (size = largest power of 4 below n): that is
            // n − span steps — the paper's "3N/4 steps have all global
            // exchanges" for the 4-way-root machine sizes (N mod 16 = 0).
            let mut span = 1usize;
            while span * 4 < n {
                span *= 4;
            }
            assert_eq!(all_global(&p), n - span, "PEX clumps (n={n})");
            // The +1 rotation staggers pairs across group boundaries; how
            // much it helps depends on the root arity (2-way roots: a single
            // all-global step survives; 4-way roots: more, but still well
            // under half of PEX's).
            assert!(
                all_global(&b) * 2 < all_global(&p),
                "BEX spreads (n={n}): {} vs {}",
                all_global(&b),
                all_global(&p)
            );
            let var = |v: &[usize]| {
                let mean = v.iter().sum::<usize>() as f64 / v.len() as f64;
                v.iter().map(|&c| (c as f64 - mean).powi(2)).sum::<f64>() / v.len() as f64
            };
            assert!(
                var(&b) < var(&p),
                "BEX per-step variance must beat PEX (n={n})"
            );
        }
    }

    /// 8-node check of the Table 4 narrative: six of seven steps carry
    /// exactly 2 global exchanges; only j=4 is all-global.
    #[test]
    fn eight_node_global_distribution() {
        let tree = FatTree::new(8);
        let crossings = bex(8, 1).root_crossings_per_step(&tree);
        assert_eq!(crossings, vec![2, 2, 2, 4, 2, 2, 2]);
    }
}
