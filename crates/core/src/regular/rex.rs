//! Recursive Exchange (REX, paper §3.3, Figure 3).
//!
//! lg N steps: at step *i* the machine is divided into groups of
//! `k = N/2^i` and each processor exchanges with its image in the other
//! half of its group. It is a **store-and-forward** algorithm: each message
//! carries *all* data destined for the partner's half — `n·N/2` bytes for an
//! exchange of `n` bytes per pair — and every step pays a pack/unpack
//! (reshuffle) memcpy on top. Fewest steps, most bytes: REX wins when
//! per-step latency dominates (tiny messages, large machines) and loses
//! when bandwidth and reshuffling dominate.

use super::assert_power_of_two;
use crate::schedule::{CommOp, Schedule, Step};

/// REX partner of `me` at `step` (0-based) on `n` nodes: across the half of
/// the current group of `k = n >> step`.
pub fn rex_partner(me: usize, step: u32, n: usize) -> usize {
    let k = n >> step;
    debug_assert!(k >= 2, "step beyond lg N");
    if me % k < k / 2 {
        me + k / 2
    } else {
        me - k / 2
    }
}

/// Generate the REX schedule for an exchange of `bytes` per ordered pair:
/// lg N steps of `bytes·N/2`-byte aggregated exchanges, flagged
/// store-and-forward so lowering adds the reshuffle cost.
pub fn rex(n: usize, bytes: u64) -> Schedule {
    assert_power_of_two(n, "REX");
    let mut schedule = Schedule::new(n);
    schedule.store_and_forward = true;
    let agg = bytes * (n as u64) / 2;
    let steps = n.trailing_zeros();
    for step in 0..steps {
        let mut st = Step::default();
        for me in 0..n {
            let partner = rex_partner(me, step, n);
            if me < partner {
                st.ops.push(CommOp::Exchange {
                    a: me,
                    b: partner,
                    bytes_ab: agg,
                    bytes_ba: agg,
                });
            }
        }
        schedule.push_step(st);
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm5_sim::FatTree;

    /// Table 3 of the paper: the 8-processor REX schedule.
    /// Step 1 spans the root (k=8), step 2 the quarters (k=4), step 3 the
    /// neighbouring pairs (k=2).
    #[test]
    fn paper_table_3() {
        let s = rex(8, 2);
        assert_eq!(s.num_steps(), 3);
        let expect: [&[(usize, usize)]; 3] = [
            &[(0, 4), (1, 5), (2, 6), (3, 7)],
            &[(0, 2), (1, 3), (4, 6), (5, 7)],
            &[(0, 1), (2, 3), (4, 5), (6, 7)],
        ];
        for (si, step) in s.steps().iter().enumerate() {
            let pairs: Vec<(usize, usize)> = step.ops.iter().map(|op| op.endpoints()).collect();
            assert_eq!(pairs, expect[si], "step {}", si + 1);
        }
        // Aggregated message size: n·N/2 = 2·8/2 = 8 bytes each direction.
        for step in s.steps() {
            for op in &step.ops {
                assert_eq!(op.bytes(), 16);
            }
        }
    }

    #[test]
    fn partner_is_an_involution() {
        for n in [2usize, 4, 8, 16, 64, 256] {
            for step in 0..n.trailing_zeros() {
                for me in 0..n {
                    let p = rex_partner(me, step, n);
                    assert_ne!(p, me);
                    assert_eq!(rex_partner(p, step, n), me, "n={n} step={step} me={me}");
                }
            }
        }
    }

    #[test]
    fn lg_n_steps_and_disjoint() {
        for n in [4usize, 16, 128] {
            let s = rex(n, 64);
            assert_eq!(s.num_steps(), n.trailing_zeros() as usize);
            s.check_pairwise_disjoint().unwrap();
            assert!(s.store_and_forward);
        }
    }

    #[test]
    fn moves_lg_n_times_the_aggregate() {
        // Total bytes = lgN steps × N/2 pairs × 2 directions × n·N/2 bytes,
        // versus n·N·(N−1) for the direct algorithms: REX moves strictly
        // more data for N > 4 — the bandwidth/latency trade the paper
        // discusses.
        let n = 32u64;
        let bytes = 100u64;
        let s = rex(32, 100);
        let total = s.total_bytes();
        assert_eq!(total, 5 * (n / 2) * 2 * (bytes * n / 2));
        assert!(total > bytes * n * (n - 1));
    }

    #[test]
    fn first_step_is_all_global() {
        let s = rex(32, 1);
        let tree = FatTree::new(32);
        let crossings = s.root_crossings_per_step(&tree);
        assert_eq!(crossings[0], 16, "step 1 crosses the root everywhere");
        assert_eq!(crossings[1..].iter().sum::<usize>(), 0);
    }
}
