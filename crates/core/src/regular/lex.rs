//! Linear Exchange (LEX, paper §3.1).
//!
//! The simplest complete-exchange algorithm: N steps; in step *i* processor
//! *i* receives a message from every other processor. Under the CM-5's
//! synchronous (rendezvous) communication each of those N−1 transfers
//! serializes through the single receiver, and every sender waits its turn —
//! which is why Figure 5 shows LEX an order of magnitude slower than the
//! pairwise algorithms.

use crate::schedule::{CommOp, Schedule, Step};

/// Generate the LEX schedule: step `i` fans `bytes`-byte messages from every
/// `j ≠ i` into processor `i`, in ascending sender order (Table 1).
pub fn lex(n: usize, bytes: u64) -> Schedule {
    assert!(n >= 2, "LEX needs at least 2 nodes");
    let mut schedule = Schedule::new(n);
    for receiver in 0..n {
        let mut step = Step::default();
        for sender in 0..n {
            if sender != receiver {
                step.ops.push(CommOp::Send {
                    from: sender,
                    to: receiver,
                    bytes,
                });
            }
        }
        schedule.push_step(step);
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::Pattern;

    /// Table 1 of the paper: the 8-processor LEX schedule. Entry `i ← j`
    /// means processor i receives from processor j in that step; step i is
    /// exactly {i ← j : j ≠ i}.
    #[test]
    fn paper_table_1() {
        let s = lex(8, 1);
        assert_eq!(s.num_steps(), 8);
        for (i, step) in s.steps().iter().enumerate() {
            assert_eq!(step.ops.len(), 7);
            let senders: Vec<usize> = step
                .ops
                .iter()
                .map(|op| match *op {
                    CommOp::Send { from, to, .. } => {
                        assert_eq!(to, i, "step {i} must receive into processor {i}");
                        from
                    }
                    other => panic!("LEX emits sends only, got {other:?}"),
                })
                .collect();
            let expect: Vec<usize> = (0..8).filter(|&j| j != i).collect();
            assert_eq!(senders, expect, "step {i} sender order");
        }
    }

    #[test]
    fn covers_complete_exchange() {
        for n in [2, 4, 8, 16, 32] {
            let s = lex(n, 256);
            let p = Pattern::complete_exchange(n, 256);
            s.check_nodes().unwrap();
            s.check_coverage(&p).unwrap();
        }
    }

    #[test]
    fn not_pairwise_disjoint() {
        // The receiver appears in all 7 ops of its step.
        let s = lex(8, 1);
        assert!(s.check_pairwise_disjoint().is_err());
    }

    #[test]
    fn works_for_non_power_of_two() {
        let s = lex(6, 8);
        let p = Pattern::complete_exchange(6, 8);
        s.check_coverage(&p).unwrap();
        assert_eq!(s.num_steps(), 6);
    }
}
