//! Complete-exchange (all-to-all personalized) algorithms (paper §3).
//!
//! Four schedule generators, exactly as the paper defines them:
//!
//! | Algorithm | Steps | Message size | Character |
//! |---|---|---|---|
//! | [`lex`](fn@lex) Linear Exchange    | N    | n       | one receiver per step — serializes under synchronous CMMD |
//! | [`pex`](fn@pex) Pairwise Exchange  | N−1  | n       | XOR pairing; clumps root crossings into N/2−1 consecutive all-global steps |
//! | [`rex`](fn@rex) Recursive Exchange | lg N | n·N/2   | store-and-forward; fewest steps, most data + reshuffle cost |
//! | [`bex`](fn@bex) Balanced Exchange  | N−1  | n       | PEX on rotated virtual numbers; spreads root crossings across steps |

pub mod bex;
pub mod lex;
pub mod pex;
pub mod rex;

pub use bex::{bex, bex_partner};
pub use lex::lex;
pub use pex::pex;
pub use rex::{rex, rex_partner};

use crate::schedule::Schedule;

/// Which complete-exchange algorithm to use (for drivers that take a
/// choice at runtime, e.g. the 2-D FFT transpose).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExchangeAlg {
    /// Linear Exchange.
    Lex,
    /// Pairwise Exchange.
    Pex,
    /// Recursive Exchange.
    Rex,
    /// Balanced Exchange.
    Bex,
}

impl ExchangeAlg {
    /// All four algorithms, in the paper's presentation order.
    pub const ALL: [ExchangeAlg; 4] = [
        ExchangeAlg::Lex,
        ExchangeAlg::Pex,
        ExchangeAlg::Rex,
        ExchangeAlg::Bex,
    ];

    /// The paper's name for the algorithm.
    pub fn name(&self) -> &'static str {
        match self {
            ExchangeAlg::Lex => "Linear",
            ExchangeAlg::Pex => "Pairwise",
            ExchangeAlg::Rex => "Recursive",
            ExchangeAlg::Bex => "Balanced",
        }
    }

    /// Generate this algorithm's schedule for `n` nodes and `bytes` bytes
    /// per ordered pair.
    pub fn schedule(&self, n: usize, bytes: u64) -> Schedule {
        match self {
            ExchangeAlg::Lex => lex(n, bytes),
            ExchangeAlg::Pex => pex(n, bytes),
            ExchangeAlg::Rex => rex(n, bytes),
            ExchangeAlg::Bex => bex(n, bytes),
        }
    }
}

pub(crate) fn assert_power_of_two(n: usize, alg: &str) {
    assert!(
        n >= 2 && n.is_power_of_two(),
        "{alg} requires a power-of-two node count, got {n}"
    );
}
