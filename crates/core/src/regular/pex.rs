//! Pairwise Exchange (PEX, paper §3.2, Figure 2).
//!
//! N−1 steps; in step `j` every processor exchanges with `me XOR j`, so the
//! whole pattern decomposes into disjoint pairwise exchanges. This is the
//! classic hypercube all-to-all that "is known to perform well on Intel
//! hypercubes". On the CM-5 fat tree its weakness is that the steps with
//! `j ≥` cluster size are *all*-global: every processor crosses the root at
//! once (the contention BEX fixes).

use super::assert_power_of_two;
use crate::schedule::{CommOp, Schedule, Step};

/// Generate the PEX schedule: step `j ∈ 1..N` pairs `i ↔ i^j`, each pair
/// exchanging `bytes` in both directions.
pub fn pex(n: usize, bytes: u64) -> Schedule {
    assert_power_of_two(n, "PEX");
    let mut schedule = Schedule::new(n);
    for j in 1..n {
        let mut step = Step::default();
        for i in 0..n {
            let k = i ^ j;
            if i < k {
                step.ops.push(CommOp::Exchange {
                    a: i,
                    b: k,
                    bytes_ab: bytes,
                    bytes_ba: bytes,
                });
            }
        }
        schedule.push_step(step);
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::Pattern;
    use cm5_sim::FatTree;

    /// Table 2 of the paper: the 8-processor PEX schedule.
    #[test]
    fn paper_table_2() {
        let s = pex(8, 1);
        assert_eq!(s.num_steps(), 7);
        let expect: [&[(usize, usize)]; 7] = [
            &[(0, 1), (2, 3), (4, 5), (6, 7)], // step 1: i ^ 1
            &[(0, 2), (1, 3), (4, 6), (5, 7)], // step 2: i ^ 2
            &[(0, 3), (1, 2), (4, 7), (5, 6)], // step 3: i ^ 3
            &[(0, 4), (1, 5), (2, 6), (3, 7)], // step 4: i ^ 4
            &[(0, 5), (1, 4), (2, 7), (3, 6)], // step 5: i ^ 5
            &[(0, 6), (1, 7), (2, 4), (3, 5)], // step 6: i ^ 6
            &[(0, 7), (1, 6), (2, 5), (3, 4)], // step 7: i ^ 7
        ];
        for (si, step) in s.steps().iter().enumerate() {
            let pairs: Vec<(usize, usize)> = step.ops.iter().map(|op| op.endpoints()).collect();
            assert_eq!(pairs, expect[si], "step {}", si + 1);
        }
    }

    #[test]
    fn disjoint_and_covering() {
        for n in [2, 4, 8, 16, 32, 64] {
            let s = pex(n, 512);
            s.check_nodes().unwrap();
            s.check_pairwise_disjoint().unwrap();
            s.check_coverage(&Pattern::complete_exchange(n, 512))
                .unwrap();
        }
    }

    /// §3.4's observation: PEX on 8 processors clumps its global exchanges —
    /// the last 4 steps are all-global, the first 3 all-local.
    #[test]
    fn global_steps_are_clumped() {
        let s = pex(8, 1);
        let tree = FatTree::new(8);
        let crossings = s.root_crossings_per_step(&tree);
        assert_eq!(crossings, vec![0, 0, 0, 4, 4, 4, 4]);
    }

    /// In general, 3N/4 · N/2 ordered... i.e. N/2·(N−N/4) unordered cross
    /// pairs... concretely: the total number of root-crossing pairs equals
    /// (N/2)² for a machine whose root splits the nodes in half.
    #[test]
    fn total_global_pairs_32() {
        let s = pex(32, 1);
        let tree = FatTree::new(32);
        let total: usize = s.root_crossings_per_step(&tree).iter().sum();
        assert_eq!(total, 16 * 16);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn rejects_non_power_of_two() {
        pex(6, 1);
    }
}
