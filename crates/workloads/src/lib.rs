//! # cm5-workloads — the paper's evaluation workloads
//!
//! * [`fft`]: sequential FFT reference + the distributed 2-D FFT whose
//!   transpose runs each complete-exchange algorithm (§3.5, Table 5);
//! * [`cg`]: a real distributed conjugate-gradient solver on a 16K-vertex
//!   mesh Laplacian — the "Conj. Grad. 16K" pattern of Table 12;
//! * [`euler`]: the Euler-solver surrogate on unstructured meshes of
//!   545/2K/3K/9K vertices — Table 12's other columns;
//! * [`synthetic`]: the seeded random patterns of Table 11.
//!
//! The distributed workloads are *numerically real*: payload bytes travel
//! through the simulated network and results are verified against the
//! sequential references in `tests/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cg;
pub mod euler;
pub mod fft;
pub mod inspector;
pub mod synthetic;

pub use cg::{cg_pattern, cg_problem, cg_seq, distributed_cg, CgProblem};
pub use euler::{
    distributed_euler, euler_pattern, euler_problem, euler_seq, EulerProblem, EULER_VARS,
};
pub use fft::{dft_naive, distributed_fft2d, fft2d_programs, fft2d_seq, fft_inplace, C64};
pub use inspector::{execute_gather, CommPlan, Distribution, Inspector};
pub use synthetic::{synthetic_pattern, synthetic_pattern_exact};
