//! Synthetic irregular patterns (Table 11).
//!
//! "We have created synthetic communication patterns with different
//! communication densities of 10%, 25%, 50% and 75% of complete exchange
//! and studied the performance of the above algorithms on these patterns
//! for message sizes of 256 and 512 bytes on a 32 processor system."

use cm5_core::Pattern;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The density levels of Table 11.
pub const TABLE_11_DENSITIES: [f64; 4] = [0.10, 0.25, 0.50, 0.75];
/// The message sizes of Table 11.
pub const TABLE_11_MSG_SIZES: [u64; 2] = [256, 512];

/// A seeded random pattern: each ordered pair communicates `msg_bytes`
/// independently with probability `density`.
pub fn synthetic_pattern(n: usize, density: f64, msg_bytes: u64, seed: u64) -> Pattern {
    assert!((0.0..=1.0).contains(&density), "density out of range");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut p = Pattern::new(n);
    for i in 0..n {
        for j in 0..n {
            if i != j && rng.gen_bool(density) {
                p.set(i, j, msg_bytes);
            }
        }
    }
    p
}

/// A seeded random pattern with *exactly* `round(density · n(n−1))`
/// communicating ordered pairs — used by the Table 11 sweep so the achieved
/// densities match the nominal ones.
pub fn synthetic_pattern_exact(n: usize, density: f64, msg_bytes: u64, seed: u64) -> Pattern {
    assert!((0.0..=1.0).contains(&density), "density out of range");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pairs: Vec<(usize, usize)> = (0..n)
        .flat_map(|i| (0..n).filter(move |&j| j != i).map(move |j| (i, j)))
        .collect();
    let want = ((pairs.len() as f64) * density).round() as usize;
    // Seeded Fisher–Yates prefix shuffle.
    for k in 0..want.min(pairs.len()) {
        let pick = rng.gen_range(k..pairs.len());
        pairs.swap(k, pick);
    }
    let mut p = Pattern::new(n);
    for &(i, j) in pairs.iter().take(want) {
        p.set(i, j, msg_bytes);
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_density_hits_target() {
        for &d in &TABLE_11_DENSITIES {
            let p = synthetic_pattern_exact(32, d, 256, 42);
            let achieved = p.density();
            assert!(
                (achieved - d).abs() < 1.0 / (32.0 * 31.0),
                "wanted {d}, got {achieved}"
            );
        }
    }

    #[test]
    fn bernoulli_density_is_close() {
        let p = synthetic_pattern(32, 0.25, 512, 7);
        let achieved = p.density();
        assert!((achieved - 0.25).abs() < 0.08, "{achieved}");
        assert_eq!(p.avg_msg_bytes(), 512.0);
    }

    #[test]
    fn seeded_and_deterministic() {
        let a = synthetic_pattern_exact(16, 0.5, 256, 1);
        let b = synthetic_pattern_exact(16, 0.5, 256, 1);
        assert_eq!(a, b);
        let c = synthetic_pattern_exact(16, 0.5, 256, 2);
        assert_ne!(a, c);
    }

    #[test]
    fn full_density_is_complete_exchange() {
        let p = synthetic_pattern_exact(8, 1.0, 64, 3);
        assert_eq!(p, Pattern::complete_exchange(8, 64));
    }
}
