//! Inspector/executor runtime for irregular data access — the machinery
//! the paper's §4 presupposes.
//!
//! "An irregular problem is one in which the pattern of data access is
//! input-dependent … the communication patterns in these problems can be
//! captured and scheduled at runtime." This module is that capture step,
//! in the style of the PARTI library the authors' group built (Ponnusamy,
//! Saltz, Das et al.): given a distributed array and each processor's
//! list of global indices it will read (an indirection array), the
//! **inspector** derives, once, exactly which elements must move between
//! which processors — producing the `Pattern` the paper's schedulers
//! consume — and the **executor** then performs the gather every
//! iteration using whichever schedule was chosen.
//!
//! ```
//! use cm5_workloads::inspector::{Distribution, Inspector};
//! use cm5_core::prelude::*;
//!
//! // A block-distributed array of 100 elements over 4 processors; node 3
//! // reads elements 0 and 99.
//! let dist = Distribution::block(100, 4);
//! let reads: Vec<Vec<usize>> = vec![vec![], vec![], vec![], vec![0, 99]];
//! let plan = Inspector::analyze(&dist, &reads, 8);
//! assert_eq!(plan.pattern.get(0, 3), 8);  // node 0 owns element 0
//! assert_eq!(plan.pattern.get(3, 0), 0);  // nothing flows back
//! ```

use std::collections::HashMap;

use bytes::{BufMut, Bytes, BytesMut};
use cm5_core::exec::pattern_exchange_payload;
use cm5_core::{Pattern, Schedule};
use cm5_sim::CmmdNode;

/// How a global array is spread over the machine.
#[derive(Debug, Clone)]
pub struct Distribution {
    /// Total elements.
    pub len: usize,
    /// Number of processors.
    pub parts: usize,
    /// `owner[g]` = processor owning global element `g`.
    owner: Vec<usize>,
    /// `local[g]` = index of `g` within its owner's storage.
    local: Vec<usize>,
    /// Elements owned by each processor, in local-index order.
    owned: Vec<Vec<usize>>,
}

impl Distribution {
    /// Contiguous block distribution (the classic default).
    pub fn block(len: usize, parts: usize) -> Distribution {
        assert!(parts >= 1 && len >= parts);
        let owner: Vec<usize> = (0..len).map(|g| (g * parts / len).min(parts - 1)).collect();
        Distribution::from_owner_map(len, parts, owner)
    }

    /// Round-robin (cyclic) distribution.
    pub fn cyclic(len: usize, parts: usize) -> Distribution {
        assert!(parts >= 1 && len >= parts);
        let owner: Vec<usize> = (0..len).map(|g| g % parts).collect();
        Distribution::from_owner_map(len, parts, owner)
    }

    /// Arbitrary (irregular) distribution from an explicit owner map — the
    /// output of a mesh partitioner, for instance.
    pub fn from_owner_map(len: usize, parts: usize, owner: Vec<usize>) -> Distribution {
        assert_eq!(owner.len(), len);
        assert!(owner.iter().all(|&p| p < parts), "owner out of range");
        let mut owned: Vec<Vec<usize>> = vec![Vec::new(); parts];
        let mut local = vec![0usize; len];
        for (g, &p) in owner.iter().enumerate() {
            local[g] = owned[p].len();
            owned[p].push(g);
        }
        Distribution {
            len,
            parts,
            owner,
            local,
            owned,
        }
    }

    /// Owner of global element `g`.
    #[inline]
    pub fn owner(&self, g: usize) -> usize {
        self.owner[g]
    }

    /// Local index of `g` within its owner.
    #[inline]
    pub fn local(&self, g: usize) -> usize {
        self.local[g]
    }

    /// Global elements owned by `p`, in local order.
    pub fn owned(&self, p: usize) -> &[usize] {
        &self.owned[p]
    }
}

/// The inspector's product: who sends what to whom, plus the lookup
/// tables the executor needs.
#[derive(Debug, Clone)]
pub struct CommPlan {
    /// Bytes-per-pair matrix (feed to any of the paper's schedulers).
    pub pattern: Pattern,
    /// `send_lists[p][q]` = local indices (on `p`) of elements `q` needs.
    pub send_lists: Vec<Vec<Vec<usize>>>,
    /// `recv_ghosts[p][q]` = global ids `p` receives from `q`, in the order
    /// they arrive (matching `send_lists[q][p]`).
    pub recv_ghosts: Vec<Vec<Vec<usize>>>,
    /// Bytes per element.
    pub elem_bytes: u64,
}

impl CommPlan {
    /// Let the `cm5-model` advisor pick the scheduler for this plan's
    /// pattern, and build that schedule — the runtime path: the
    /// inspector has just discovered who talks to whom, and nobody has
    /// simulated anything yet. The advisor's decision cache makes
    /// repeated calls (one per solver phase, say) O(1) after the first.
    pub fn auto_schedule(
        &self,
        advisor: &cm5_model::Advisor,
        params: &cm5_sim::MachineParams,
        tree: &cm5_sim::FatTree,
    ) -> (cm5_model::Recommendation, Schedule) {
        let stats = cm5_model::PatternStats::of(&self.pattern, tree);
        let rec = advisor.recommend_pattern(&stats, params, tree);
        let alg = match rec.algorithm {
            cm5_model::Algorithm::Irregular(a) => a,
            ref other => unreachable!("irregular workload priced as {other}"),
        };
        (rec, alg.schedule(&self.pattern))
    }
}

/// The inspector: runs once per access pattern.
pub struct Inspector;

impl Inspector {
    /// Analyze each processor's read set (`reads[p]` = global indices `p`
    /// dereferences) against `dist`: off-processor reads become
    /// communication. Duplicate reads are fetched once.
    pub fn analyze(dist: &Distribution, reads: &[Vec<usize>], elem_bytes: u64) -> CommPlan {
        assert_eq!(reads.len(), dist.parts, "one read set per processor");
        let parts = dist.parts;
        let mut send_lists: Vec<Vec<Vec<usize>>> = vec![vec![Vec::new(); parts]; parts];
        let mut recv_ghosts: Vec<Vec<Vec<usize>>> = vec![vec![Vec::new(); parts]; parts];
        for (p, my_reads) in reads.iter().enumerate() {
            // Unique off-processor globals, sorted for determinism.
            let mut needed: Vec<usize> = my_reads
                .iter()
                .copied()
                .filter(|&g| {
                    assert!(g < dist.len, "read of out-of-range element {g}");
                    dist.owner(g) != p
                })
                .collect();
            needed.sort_unstable();
            needed.dedup();
            for g in needed {
                let q = dist.owner(g);
                send_lists[q][p].push(dist.local(g));
                recv_ghosts[p][q].push(g);
            }
        }
        let mut pattern = Pattern::new(parts);
        #[allow(clippy::needless_range_loop)] // p, q are node ids
        for p in 0..parts {
            for q in 0..parts {
                if p != q {
                    let n = send_lists[p][q].len() as u64;
                    if n > 0 {
                        pattern.set(p, q, n * elem_bytes);
                    }
                }
            }
        }
        CommPlan {
            pattern,
            send_lists,
            recv_ghosts,
            elem_bytes,
        }
    }
}

/// The executor: performs one gather of `f64` values through `schedule`
/// (any schedule of `plan.pattern`). `local_values` is this node's owned
/// data in local-index order; returns a map global-id → value for every
/// ghost element this node reads.
///
/// Call from every node of a [`cm5_sim::Simulation::run_nodes`] closure,
/// once per solver iteration — the plan and schedule are reused, which is
/// the paper's amortization argument for runtime scheduling.
pub fn execute_gather(
    node: &CmmdNode,
    plan: &CommPlan,
    schedule: &Schedule,
    local_values: &[f64],
) -> HashMap<usize, f64> {
    assert_eq!(plan.elem_bytes, 8, "f64 executor requires 8-byte elements");
    let me = node.id();
    let parts = node.nodes();
    let outgoing: Vec<Option<Bytes>> = (0..parts)
        .map(|q| {
            let list = &plan.send_lists[me][q];
            if list.is_empty() {
                None
            } else {
                let mut buf = BytesMut::with_capacity(list.len() * 8);
                for &li in list {
                    buf.put_f64_le(local_values[li]);
                }
                Some(buf.freeze())
            }
        })
        .collect();
    let incoming = pattern_exchange_payload(node, schedule, &outgoing);
    let mut ghosts = HashMap::new();
    for (q, data) in incoming.into_iter().enumerate() {
        if let Some(data) = data {
            let globals = &plan.recv_ghosts[me][q];
            assert_eq!(data.len(), globals.len() * 8, "gather payload from {q}");
            for (k, &g) in globals.iter().enumerate() {
                let v = f64::from_le_bytes(data[k * 8..k * 8 + 8].try_into().expect("8B"));
                ghosts.insert(g, v);
            }
        }
    }
    ghosts
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm5_core::prelude::*;
    use cm5_sim::{MachineParams, Simulation};

    #[test]
    fn block_distribution_maps_correctly() {
        let d = Distribution::block(10, 3);
        // Blocks: {0,1,2}, {3,4,5}, {6,7,8,9} (proportional rounding).
        assert_eq!(d.owner(0), 0);
        assert_eq!(d.owner(9), 2);
        assert_eq!(d.local(0), 0);
        let total: usize = (0..3).map(|p| d.owned(p).len()).sum();
        assert_eq!(total, 10);
        for g in 0..10 {
            assert_eq!(d.owned(d.owner(g))[d.local(g)], g);
        }
    }

    #[test]
    fn cyclic_distribution_round_robins() {
        let d = Distribution::cyclic(10, 4);
        assert_eq!(d.owner(0), 0);
        assert_eq!(d.owner(5), 1);
        assert_eq!(d.local(5), 1); // second element of node 1 (1, 5, 9)
        assert_eq!(d.owned(1), &[1, 5, 9]);
    }

    #[test]
    fn inspector_finds_off_processor_reads() {
        let d = Distribution::block(16, 4);
        // Node 2 reads {0, 1, 8, 15}: 0,1 owned by 0; 8 is its own; 15 by 3.
        let reads = vec![vec![], vec![], vec![0, 1, 8, 15, 0], vec![]];
        let plan = Inspector::analyze(&d, &reads, 8);
        assert_eq!(plan.pattern.get(0, 2), 16); // two elements, deduped
        assert_eq!(plan.pattern.get(3, 2), 8);
        assert_eq!(plan.pattern.get(2, 0), 0);
        assert_eq!(plan.recv_ghosts[2][0], vec![0, 1]);
        assert_eq!(plan.send_lists[3][2], vec![d.local(15)]);
    }

    #[test]
    fn inspector_ignores_local_reads() {
        let d = Distribution::block(8, 2);
        let reads = vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7]];
        let plan = Inspector::analyze(&d, &reads, 8);
        assert_eq!(plan.pattern.nonzero_pairs(), 0);
    }

    /// End-to-end: a distributed indirect sum `Σ x[idx[i]]` over a random
    /// indirection array matches the sequential result exactly, with the
    /// gather scheduled by each of the paper's schedulers.
    #[test]
    fn distributed_indirect_sum_matches_sequential() {
        let parts = 8;
        let len = 256;
        let dist = Distribution::block(len, parts);
        // Global data: x[g] = deterministic values.
        let x: Vec<f64> = (0..len).map(|g| ((g * 37) % 101) as f64 * 0.25).collect();
        // Indirection array: each node reads a seeded-pseudo-random slice.
        let reads: Vec<Vec<usize>> = (0..parts)
            .map(|p| (0..40).map(|k| (p * 7919 + k * 104729) % len).collect())
            .collect();
        let seq: Vec<f64> = reads
            .iter()
            .map(|r| r.iter().map(|&g| x[g]).sum())
            .collect();
        let plan = Inspector::analyze(&dist, &reads, 8);
        for alg in IrregularAlg::ALL {
            let schedule = alg.schedule(&plan.pattern);
            let sim = Simulation::new(parts, MachineParams::cm5_1992());
            let (_, sums) = sim
                .run_nodes_collect(|node| {
                    let me = node.id();
                    let local: Vec<f64> = dist.owned(me).iter().map(|&g| x[g]).collect();
                    let ghosts = execute_gather(node, &plan, &schedule, &local);
                    reads[me]
                        .iter()
                        .map(|&g| {
                            if dist.owner(g) == me {
                                local[dist.local(g)]
                            } else {
                                ghosts[&g]
                            }
                        })
                        .sum::<f64>()
                })
                .unwrap();
            for (p, (&got, &want)) in sums.iter().zip(&seq).enumerate() {
                assert_eq!(got, want, "{}: node {p}", alg.name());
            }
        }
    }

    /// The advisor-driven path: `auto_schedule` must return a schedule
    /// of the plan's own pattern whose executor gather is still exact,
    /// and the pick must match pricing the stats directly.
    #[test]
    fn auto_schedule_gathers_correctly() {
        use cm5_model::prelude::*;
        use cm5_sim::FatTree;
        let parts = 8;
        let len = 128;
        let dist = Distribution::cyclic(len, parts);
        let x: Vec<f64> = (0..len).map(|g| (g * g % 61) as f64).collect();
        let reads: Vec<Vec<usize>> = (0..parts)
            .map(|p| (0..24).map(|k| (p * 31 + k * 17) % len).collect())
            .collect();
        let plan = Inspector::analyze(&dist, &reads, 8);
        let params = MachineParams::cm5_1992();
        let tree = FatTree::new(parts);
        let advisor = Advisor::new();
        let (rec, schedule) = plan.auto_schedule(&advisor, &params, &tree);
        assert!(matches!(rec.algorithm, Algorithm::Irregular(_)));
        let direct = Advisor::recommend_uncached(
            &Workload::Irregular(PatternStats::of(&plan.pattern, &tree)),
            &params,
            &tree,
        );
        assert_eq!(rec, direct);
        // Second call hits the decision cache and must agree.
        let (rec2, _) = plan.auto_schedule(&advisor, &params, &tree);
        assert_eq!(rec, rec2);
        assert_eq!(advisor.cache_len(), 1);
        // The chosen schedule still moves the right data.
        let seq: Vec<f64> = reads
            .iter()
            .map(|r| r.iter().map(|&g| x[g]).sum())
            .collect();
        let sim = Simulation::new(parts, params);
        let (_, sums) = sim
            .run_nodes_collect(|node| {
                let me = node.id();
                let local: Vec<f64> = dist.owned(me).iter().map(|&g| x[g]).collect();
                let ghosts = execute_gather(node, &plan, &schedule, &local);
                reads[me]
                    .iter()
                    .map(|&g| {
                        if dist.owner(g) == me {
                            local[dist.local(g)]
                        } else {
                            ghosts[&g]
                        }
                    })
                    .sum::<f64>()
            })
            .unwrap();
        assert_eq!(sums, seq);
    }

    #[test]
    fn irregular_owner_map_from_partitioner() {
        // The inspector composes with mesh partitions: owner map = RCB.
        use cm5_mesh::prelude::*;
        let pts = jittered_grid(8, 8, 0.2, 3);
        let asg = rcb(&pts, 4);
        let dist = Distribution::from_owner_map(pts.len(), 4, asg.clone());
        for (g, &p) in asg.iter().enumerate() {
            assert_eq!(dist.owner(g), p);
        }
    }

    #[test]
    #[should_panic(expected = "out-of-range")]
    fn inspector_rejects_bad_reads() {
        let d = Distribution::block(8, 2);
        Inspector::analyze(&d, &[vec![99], vec![]], 8);
    }
}
