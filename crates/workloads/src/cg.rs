//! Conjugate-gradient solver — the paper's "Conj. Grad. 16K" workload
//! (Table 12).
//!
//! A real CG iteration on a graph Laplacian of a 16K-vertex unstructured
//! mesh, distributed over the simulated machine: the mesh is partitioned
//! into strips (the classic 1992 decomposition — ~2 fat neighbours per
//! part, giving the paper's low-density/large-message pattern), each SpMV
//! exchanges halo values through one of the paper's irregular schedulers,
//! and dot products ride the control network's global sum.

use std::collections::HashMap;

use bytes::{BufMut, Bytes, BytesMut};
use cm5_core::exec::pattern_exchange_payload;
use cm5_core::{Pattern, Schedule};
use cm5_mesh::prelude::*;
use cm5_sim::CmmdNode;

/// Bytes sent per halo vertex per exchange (one `f64` value).
pub const CG_BYTES_PER_VALUE: u64 = 8;

/// A CG problem instance: mesh, matrix, partition and halo.
#[derive(Debug, Clone)]
pub struct CgProblem {
    /// The Laplacian system matrix (positive definite via diagonal shift).
    pub matrix: Csr,
    /// Right-hand side.
    pub rhs: Vec<f64>,
    /// Vertex → part assignment.
    pub assignment: Vec<usize>,
    /// Number of parts (machine size).
    pub parts: usize,
    /// The halo structure of the partition.
    pub halo: Halo,
    /// The communication byte matrix of one halo exchange.
    pub pattern: Pattern,
}

/// Build the paper's CG workload: a 128×128 jittered-grid mesh (16,384
/// vertices), column-strip partitioned across `parts` nodes. Deterministic.
pub fn cg_problem(parts: usize) -> CgProblem {
    let nx = 128usize;
    let ny = 128usize;
    let pts = jittered_grid(nx, ny, 0.3, 0xC64AD);
    let mesh = cm5_mesh::delaunay(&pts);
    // Clean column strips: vertex v sits at grid column v % nx.
    let assignment: Vec<usize> = (0..pts.len())
        .map(|v| ((v % nx) * parts / nx).min(parts - 1))
        .collect();
    let edges = mesh.edges();
    let halo = Halo::build(parts, &assignment, &edges);
    let pattern = halo.pattern(CG_BYTES_PER_VALUE);
    let matrix = Csr::laplacian(pts.len(), &edges, 1.0);
    // Deterministic, structured RHS.
    let rhs: Vec<f64> = (0..pts.len())
        .map(|v| ((v % 97) as f64 - 48.0) / 97.0)
        .collect();
    CgProblem {
        matrix,
        rhs,
        assignment,
        parts,
        halo,
        pattern,
    }
}

/// Just the communication pattern of the CG workload (Table 12 column 1).
pub fn cg_pattern(parts: usize) -> Pattern {
    cg_problem(parts).pattern
}

/// Sequential CG, fixed iteration count; returns `(x, final ‖r‖²)`.
pub fn cg_seq(matrix: &Csr, rhs: &[f64], iters: usize) -> (Vec<f64>, f64) {
    let n = matrix.rows();
    let mut x = vec![0.0; n];
    let mut r = rhs.to_vec();
    let mut p = r.clone();
    let mut q = vec![0.0; n];
    let mut rs: f64 = r.iter().map(|v| v * v).sum();
    for _ in 0..iters {
        matrix.spmv(&p, &mut q);
        let pq: f64 = p.iter().zip(&q).map(|(a, b)| a * b).sum();
        let alpha = rs / pq;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * q[i];
        }
        let rs_new: f64 = r.iter().map(|v| v * v).sum();
        let beta = rs_new / rs;
        rs = rs_new;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
    }
    (x, rs)
}

/// Per-node view of the distributed problem.
struct LocalView {
    /// Global ids of owned vertices, ascending.
    owned: Vec<usize>,
    /// Global ids of ghost vertices, ascending.
    ghosts: Vec<usize>,
    /// global id → local index (owned first, then ghosts). Consumed during
    /// construction; retained for the structural tests.
    #[allow(dead_code)]
    index: HashMap<usize, usize>,
    /// Local CSR rows for owned vertices (columns are local indices).
    rows: Vec<Vec<(usize, f64)>>,
    /// For each peer, the local indices (into owned) of values I send it.
    send_local: Vec<Vec<usize>>,
    /// For each peer, the local indices (into the full local vector) where
    /// its values land.
    recv_local: Vec<Vec<usize>>,
}

fn build_view(problem: &CgProblem, me: usize) -> LocalView {
    let owned: Vec<usize> = (0..problem.assignment.len())
        .filter(|&v| problem.assignment[v] == me)
        .collect();
    let mut ghosts: Vec<usize> = Vec::new();
    for q in 0..problem.parts {
        if q != me {
            ghosts.extend_from_slice(problem.halo.send_list(q, me));
        }
    }
    ghosts.sort_unstable();
    ghosts.dedup();
    let mut index = HashMap::with_capacity(owned.len() + ghosts.len());
    for (i, &v) in owned.iter().enumerate() {
        index.insert(v, i);
    }
    for (i, &v) in ghosts.iter().enumerate() {
        index.insert(v, owned.len() + i);
    }
    let rows: Vec<Vec<(usize, f64)>> = owned
        .iter()
        .map(|&v| {
            problem
                .matrix
                .row(v)
                .map(|(c, val)| {
                    let li = *index
                        .get(&c)
                        .unwrap_or_else(|| panic!("column {c} outside halo of part {me}"));
                    (li, val)
                })
                .collect()
        })
        .collect();
    let send_local: Vec<Vec<usize>> = (0..problem.parts)
        .map(|q| {
            problem
                .halo
                .send_list(me, q)
                .iter()
                .map(|&v| index[&v])
                .collect()
        })
        .collect();
    let recv_local: Vec<Vec<usize>> = (0..problem.parts)
        .map(|q| {
            if q == me {
                Vec::new()
            } else {
                problem
                    .halo
                    .send_list(q, me)
                    .iter()
                    .map(|&v| index[&v])
                    .collect()
            }
        })
        .collect();
    LocalView {
        owned,
        ghosts,
        index,
        rows,
        send_local,
        recv_local,
    }
}

fn exchange_halo(node: &CmmdNode, schedule: &Schedule, view: &LocalView, vec: &mut [f64]) {
    let parts = node.nodes();
    let outgoing: Vec<Option<Bytes>> = (0..parts)
        .map(|q| {
            let list = &view.send_local[q];
            if list.is_empty() {
                None
            } else {
                let mut buf = BytesMut::with_capacity(list.len() * 8);
                for &li in list {
                    buf.put_f64_le(vec[li]);
                }
                Some(buf.freeze())
            }
        })
        .collect();
    let incoming = pattern_exchange_payload(node, schedule, &outgoing);
    for (q, data) in incoming.into_iter().enumerate() {
        if let Some(data) = data {
            let targets = &view.recv_local[q];
            assert_eq!(data.len(), targets.len() * 8, "halo payload from {q}");
            for (k, &li) in targets.iter().enumerate() {
                vec[li] = f64::from_le_bytes(data[k * 8..k * 8 + 8].try_into().expect("8B"));
            }
        }
    }
}

/// Distributed CG: call from every node of a
/// [`cm5_sim::Simulation::run_nodes`] closure. `schedule` must be one of
/// the irregular schedules of `problem.pattern`. Runs `iters` iterations
/// and returns `(owned global ids, owned solution values, final ‖r‖²)`.
///
/// Compute (SpMV + vector ops) is charged at the scalar flop rate; halo
/// values move as real bytes via `schedule`; dot products use the control
/// network's global sum.
pub fn distributed_cg(
    node: &CmmdNode,
    problem: &CgProblem,
    schedule: &Schedule,
    iters: usize,
) -> (Vec<usize>, Vec<f64>, f64) {
    let me = node.id();
    assert_eq!(node.nodes(), problem.parts);
    let view = build_view(problem, me);
    let n_local = view.owned.len();
    let n_full = n_local + view.ghosts.len();
    let nnz_local: usize = view.rows.iter().map(|r| r.len()).sum();

    let mut x = vec![0.0; n_local];
    let mut r: Vec<f64> = view.owned.iter().map(|&v| problem.rhs[v]).collect();
    let mut p = vec![0.0; n_full];
    p[..n_local].copy_from_slice(&r);
    let mut q = vec![0.0; n_local];
    let mut rs = node.reduce_sum(r.iter().map(|v| v * v).sum());
    for _ in 0..iters {
        // q = A·p (ghost values of p fetched through the scheduler).
        exchange_halo(node, schedule, &view, &mut p);
        for (i, row) in view.rows.iter().enumerate() {
            let mut acc = 0.0;
            for &(c, v) in row {
                acc += v * p[c];
            }
            q[i] = acc;
        }
        let pq = node.reduce_sum((0..n_local).map(|i| p[i] * q[i]).sum());
        let alpha = rs / pq;
        for i in 0..n_local {
            x[i] += alpha * p[i];
            r[i] -= alpha * q[i];
        }
        let rs_new = node.reduce_sum(r.iter().map(|v| v * v).sum());
        let beta = rs_new / rs;
        rs = rs_new;
        for i in 0..n_local {
            p[i] = r[i] + beta * p[i];
        }
        node.flops((2 * nnz_local + 10 * n_local) as u64);
    }
    (view.owned, x, rs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cg_seq_converges_on_small_laplacian() {
        // 2-D grid graph Laplacian + shift: CG must drive the residual down.
        let edges: Vec<(usize, usize)> = (0..15usize).map(|i| (i, i + 1)).collect();
        let m = Csr::laplacian(16, &edges, 0.5);
        let rhs: Vec<f64> = (0..16).map(|i| (i as f64).sin()).collect();
        let (x, rs) = cg_seq(&m, &rhs, 60);
        assert!(rs < 1e-18, "residual {rs}");
        // Check A·x = b.
        let mut ax = vec![0.0; 16];
        m.spmv(&x, &mut ax);
        for (a, b) in ax.iter().zip(&rhs) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn cg_problem_pattern_statistics() {
        // The stand-in for Table 12's CG column: low density, fat messages
        // (paper: 9 %, 643 B).
        let problem = cg_problem(32);
        let d = problem.pattern.density();
        let avg = problem.pattern.avg_msg_bytes();
        assert!(d > 0.04 && d < 0.12, "density {d}");
        assert!(avg > 400.0 && avg < 1600.0, "avg bytes {avg}");
        assert!(problem.pattern.symmetric_support());
    }

    #[test]
    fn view_covers_matrix_columns() {
        let problem = cg_problem(8);
        for me in 0..8 {
            let view = build_view(&problem, me);
            assert!(!view.owned.is_empty());
            // Every owned row's columns resolved (build_view panics
            // otherwise); ghosts and owned disjoint.
            for g in &view.ghosts {
                assert!(problem.assignment[*g] != me);
            }
            assert_eq!(view.index.len(), view.owned.len() + view.ghosts.len());
        }
    }
}
