//! Euler-solver workload — the paper's "Euler 545/2K/3K/9K" columns
//! (Table 12).
//!
//! The originals are Mavriplis' unstructured-mesh Euler solvers. The
//! stand-in here keeps everything that shapes the *communication*: an
//! edge-based iteration over an unstructured triangulation with four
//! conserved variables per vertex and gradient reconstruction, which needs
//! a **two-ring halo** — neighbours' gradients depend on their own
//! neighbours' values. Partitioning follows 1992 practice (file-order
//! block decomposition, emulated by noisy strips), which is what produces
//! the paper's 29–44 % pattern densities.
//!
//! The update itself is a simplified-physics surrogate (gradient-smoothed
//! diffusion of 4 channels with a weak nonlinearity), documented as such in
//! DESIGN.md: Table 12 depends on the halo pattern and bytes, not on shock
//! capturing.

use std::collections::HashMap;

use bytes::{BufMut, Bytes, BytesMut};
use cm5_core::exec::pattern_exchange_payload;
use cm5_core::{Pattern, Schedule};
use cm5_mesh::prelude::*;
use cm5_sim::CmmdNode;

/// Conserved variables per vertex (density, x/y momentum, energy).
pub const EULER_VARS: usize = 4;
/// Bytes sent per halo vertex per exchange. The paper's average message
/// sizes (85–612 B) correspond to one 8-byte variable exchange per
/// communication phase; solvers exchanged the four variables in separate
/// phases.
pub const EULER_BYTES_PER_VALUE: u64 = 8;

/// An Euler workload instance.
#[derive(Debug, Clone)]
pub struct EulerProblem {
    /// Vertex count.
    pub vertices: usize,
    /// Sorted adjacency per vertex.
    pub adjacency: Vec<Vec<usize>>,
    /// Vertex → part.
    pub assignment: Vec<usize>,
    /// Number of parts.
    pub parts: usize,
    /// Two-ring halo.
    pub halo: Halo,
    /// The byte matrix of one halo exchange.
    pub pattern: Pattern,
    /// Deterministic initial state, `vertices × EULER_VARS`, row-major.
    pub initial: Vec<f64>,
}

/// Build the stand-in for one of the paper's Euler datasets.
/// `vertices` is typically one of
/// [`cm5_mesh::meshgen::EULER_MESH_SIZES`]; `parts` is the machine size.
pub fn euler_problem(vertices: usize, parts: usize) -> EulerProblem {
    let mesh = euler_mesh(vertices);
    let nx = (vertices as f64).sqrt().ceil();
    // File-order block decomposition emulation: strip key = x + noise of
    // three strip widths (calibrated against Table 12's densities).
    let noise = 3.0 * nx / parts as f64;
    let assignment = noisy_strips(mesh.points(), parts, noise, 0xB10C + vertices as u64);
    let edges = mesh.edges();
    let halo = Halo::build_k(parts, &assignment, &edges, 2);
    let pattern = halo.pattern(EULER_BYTES_PER_VALUE);
    let n = mesh.num_points();
    let mut adjacency: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(a, b) in &edges {
        adjacency[a].push(b);
        adjacency[b].push(a);
    }
    for adj in adjacency.iter_mut() {
        adj.sort_unstable();
    }
    let initial: Vec<f64> = (0..n * EULER_VARS)
        .map(|i| {
            let v = i / EULER_VARS;
            let k = i % EULER_VARS;
            let p = mesh.points()[v];
            // A smooth deterministic field with per-variable phase.
            (p.x * 0.11 + p.y * 0.07 + k as f64).sin()
        })
        .collect();
    EulerProblem {
        vertices: n,
        adjacency,
        assignment,
        parts,
        halo,
        pattern,
        initial,
    }
}

/// Just the communication pattern (Table 12's Euler columns).
pub fn euler_pattern(vertices: usize, parts: usize) -> Pattern {
    euler_problem(vertices, parts).pattern
}

/// One sequential iteration of the surrogate scheme, Jacobi-style:
/// gradients from the one-ring, then a gradient-smoothed update — so the
/// new value of a vertex depends on its **two-ring**.
pub fn euler_step_seq(adjacency: &[Vec<usize>], u: &[f64]) -> Vec<f64> {
    let n = adjacency.len();
    let mut grad = vec![0.0; n * EULER_VARS];
    for v in 0..n {
        let deg = adjacency[v].len().max(1) as f64;
        for k in 0..EULER_VARS {
            let mut acc = 0.0;
            for &w in &adjacency[v] {
                acc += u[w * EULER_VARS + k] - u[v * EULER_VARS + k];
            }
            grad[v * EULER_VARS + k] = acc / deg;
        }
    }
    let mut out = vec![0.0; n * EULER_VARS];
    let dt = 0.05;
    for v in 0..n {
        let deg = adjacency[v].len().max(1) as f64;
        for k in 0..EULER_VARS {
            let uv = u[v * EULER_VARS + k];
            let gv = grad[v * EULER_VARS + k];
            let mut flux = 0.0;
            for &w in &adjacency[v] {
                let uw = u[w * EULER_VARS + k];
                let gw = grad[w * EULER_VARS + k];
                // Central difference with gradient reconstruction and a
                // weak quadratic nonlinearity.
                flux += (uw - uv) + 0.5 * (gw - gv) + 0.01 * (uw * uw - uv * uv);
            }
            out[v * EULER_VARS + k] = uv + dt * flux / deg;
        }
    }
    out
}

/// Run `iters` sequential iterations from the problem's initial state.
pub fn euler_seq(problem: &EulerProblem, iters: usize) -> Vec<f64> {
    let mut u = problem.initial.clone();
    for _ in 0..iters {
        u = euler_step_seq(&problem.adjacency, &u);
    }
    u
}

/// Per-node view: owned vertices plus the two-ring ghost region, with the
/// adjacency restricted to what the node can compute.
struct EulerView {
    owned: Vec<usize>,
    /// All vertices the node stores (owned + two-ring ghosts), sorted.
    stored: Vec<usize>,
    index: HashMap<usize, usize>,
    /// Per peer: stored-local indices of values I send (my owned boundary).
    send_local: Vec<Vec<usize>>,
    /// Per peer: stored-local indices where its values land.
    recv_local: Vec<Vec<usize>>,
    /// For vertices where the full one-ring is stored: the local adjacency.
    /// `None` for ghost-fringe vertices whose ring is incomplete (their
    /// gradient is never needed for owned updates).
    local_adj: Vec<Option<Vec<usize>>>,
}

fn build_view(problem: &EulerProblem, me: usize) -> EulerView {
    let owned: Vec<usize> = (0..problem.vertices)
        .filter(|&v| problem.assignment[v] == me)
        .collect();
    let mut stored = owned.clone();
    for q in 0..problem.parts {
        if q != me {
            stored.extend_from_slice(problem.halo.send_list(q, me));
        }
    }
    stored.sort_unstable();
    stored.dedup();
    let index: HashMap<usize, usize> = stored.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    let send_local: Vec<Vec<usize>> = (0..problem.parts)
        .map(|q| {
            problem
                .halo
                .send_list(me, q)
                .iter()
                .map(|&v| index[&v])
                .collect()
        })
        .collect();
    let recv_local: Vec<Vec<usize>> = (0..problem.parts)
        .map(|q| {
            if q == me {
                Vec::new()
            } else {
                problem
                    .halo
                    .send_list(q, me)
                    .iter()
                    .map(|&v| index[&v])
                    .collect()
            }
        })
        .collect();
    let local_adj: Vec<Option<Vec<usize>>> = stored
        .iter()
        .map(|&v| {
            let ring = &problem.adjacency[v];
            if ring.iter().all(|w| index.contains_key(w)) {
                Some(ring.iter().map(|w| index[w]).collect())
            } else {
                None
            }
        })
        .collect();
    EulerView {
        owned,
        stored,
        index,
        send_local,
        recv_local,
        local_adj,
    }
}

/// Distributed surrogate-Euler: call from every node of a
/// [`cm5_sim::Simulation::run_nodes`] closure. Each iteration exchanges one
/// variable's halo through `schedule` (×[`EULER_VARS`] phases, as the 1992
/// codes did), recomputes ghost gradients locally, and updates owned
/// vertices. Returns `(owned ids, owned state)` after `iters` iterations —
/// bit-identical to [`euler_seq`] on the owned subset.
pub fn distributed_euler(
    node: &CmmdNode,
    problem: &EulerProblem,
    schedule: &Schedule,
    iters: usize,
) -> (Vec<usize>, Vec<f64>) {
    let me = node.id();
    assert_eq!(node.nodes(), problem.parts);
    let view = build_view(problem, me);
    let ns = view.stored.len();
    // Local state: stored vertices × vars.
    let mut u: Vec<f64> = view
        .stored
        .iter()
        .flat_map(|&v| (0..EULER_VARS).map(move |k| problem.initial[v * EULER_VARS + k]))
        .collect();
    let mut grad = vec![0.0; ns * EULER_VARS];
    let owned_set: Vec<usize> = view.owned.iter().map(|&v| view.index[&v]).collect();
    let flops_per_iter = (view
        .local_adj
        .iter()
        .flatten()
        .map(|a| a.len())
        .sum::<usize>()
        * EULER_VARS
        * 8) as u64;

    for _ in 0..iters {
        // Exchange each variable's halo as its own phase (hence
        // bytes-per-value = 8 in the pattern).
        for k in 0..EULER_VARS {
            let outgoing: Vec<Option<Bytes>> = (0..problem.parts)
                .map(|q| {
                    let list = &view.send_local[q];
                    if list.is_empty() {
                        None
                    } else {
                        let mut buf = BytesMut::with_capacity(list.len() * 8);
                        for &li in list {
                            buf.put_f64_le(u[li * EULER_VARS + k]);
                        }
                        Some(buf.freeze())
                    }
                })
                .collect();
            let incoming = pattern_exchange_payload(node, schedule, &outgoing);
            for (q, data) in incoming.into_iter().enumerate() {
                if let Some(data) = data {
                    let targets = &view.recv_local[q];
                    assert_eq!(data.len(), targets.len() * 8);
                    for (i, &li) in targets.iter().enumerate() {
                        u[li * EULER_VARS + k] =
                            f64::from_le_bytes(data[i * 8..i * 8 + 8].try_into().expect("8B"));
                    }
                }
            }
        }
        // Gradients wherever the full ring is stored (owned + inner ghosts).
        for (li, adj) in view.local_adj.iter().enumerate() {
            if let Some(adj) = adj {
                let deg = adj.len().max(1) as f64;
                for k in 0..EULER_VARS {
                    let mut acc = 0.0;
                    for &w in adj {
                        acc += u[w * EULER_VARS + k] - u[li * EULER_VARS + k];
                    }
                    grad[li * EULER_VARS + k] = acc / deg;
                }
            }
        }
        // Update owned vertices (their ring's gradients are all available).
        let dt = 0.05;
        let mut new_owned = vec![0.0; owned_set.len() * EULER_VARS];
        for (oi, &li) in owned_set.iter().enumerate() {
            let adj = view.local_adj[li]
                .as_ref()
                .expect("owned vertex must have a complete ring");
            let deg = adj.len().max(1) as f64;
            for k in 0..EULER_VARS {
                let uv = u[li * EULER_VARS + k];
                let gv = grad[li * EULER_VARS + k];
                let mut flux = 0.0;
                for &w in adj {
                    let uw = u[w * EULER_VARS + k];
                    let gw = grad[w * EULER_VARS + k];
                    flux += (uw - uv) + 0.5 * (gw - gv) + 0.01 * (uw * uw - uv * uv);
                }
                new_owned[oi * EULER_VARS + k] = uv + dt * flux / deg;
            }
        }
        for (oi, &li) in owned_set.iter().enumerate() {
            for k in 0..EULER_VARS {
                u[li * EULER_VARS + k] = new_owned[oi * EULER_VARS + k];
            }
        }
        node.flops(flops_per_iter);
    }
    let mut out = Vec::with_capacity(owned_set.len() * EULER_VARS);
    for &li in &owned_set {
        out.extend_from_slice(&u[li * EULER_VARS..(li + 1) * EULER_VARS]);
    }
    (view.owned, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_statistics_match_table_12_shape() {
        // Paper: 37 %, 44 %, 29 %, 44 % density; 85–612 B messages; all
        // under the 50 % greedy-vs-balanced crossover.
        for &(verts, lo_d, hi_d) in &[(545usize, 0.25, 0.55), (2048, 0.25, 0.55)] {
            let pat = euler_pattern(verts, 32);
            let d = pat.density();
            assert!(d > lo_d && d < hi_d, "{verts}: density {d}");
            assert!(d < 0.5, "{verts}: must stay under the GS/BS crossover");
            let avg = pat.avg_msg_bytes();
            assert!(avg > 30.0 && avg < 1500.0, "{verts}: avg {avg}");
        }
    }

    #[test]
    fn seq_step_is_stable() {
        let problem = euler_problem(545, 8);
        let u1 = euler_seq(&problem, 5);
        let max0 = problem.initial.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        let max1 = u1.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        assert!(max1.is_finite());
        assert!(max1 < max0 * 2.0, "update blew up: {max0} -> {max1}");
        // And it actually changes the state.
        assert!(u1.iter().zip(&problem.initial).any(|(a, b)| a != b));
    }

    #[test]
    fn two_ring_view_supports_owned_updates() {
        let problem = euler_problem(545, 8);
        for me in 0..8 {
            let view = build_view(&problem, me);
            for &v in &view.owned {
                let li = view.index[&v];
                assert!(
                    view.local_adj[li].is_some(),
                    "part {me}: owned vertex {v} missing ring"
                );
                // Every ring neighbour's own ring must also be stored
                // (needed for its gradient).
                for w in &problem.adjacency[v] {
                    let lw = view.index[w];
                    assert!(
                        view.local_adj[lw].is_some(),
                        "part {me}: neighbour {w} of owned {v} missing ring"
                    );
                }
            }
        }
    }
}
