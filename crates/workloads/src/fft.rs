//! Fast Fourier transforms — sequential reference and the distributed 2-D
//! FFT of the paper's §3.5 / Table 5.
//!
//! The paper's 2-D FFT: "The 2D array is distributed along rows among
//! processors. Each processor initially performs 1D FFT on its local data
//! and performs a complete exchange using any one of the algorithms
//! described. Each processor then performs 1D FFT on new data."
//!
//! Two drivers:
//!
//! * [`distributed_fft2d`] — thread-mode, **numerically real**: payloads
//!   carry actual `f64` pairs through the simulated network, the transpose
//!   is done by a genuine complete exchange, and the result is verified
//!   against [`fft2d_seq`] in the tests;
//! * [`fft2d_programs`] — op-mode cost model for the Table 5 parameter
//!   sweep (same communication schedule, flop-charged compute), cheap
//!   enough to run the 2048² × 256-processor corner.

use bytes::{BufMut, Bytes, BytesMut};
use cm5_core::exec::complete_exchange_payload;
use cm5_core::regular::ExchangeAlg;
use cm5_sim::{CmmdNode, Op, OpProgram};

/// A complex number (two f64s). Minimal on purpose: the library avoids
/// external numeric dependencies.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// Construct a complex number.
    #[inline]
    pub fn new(re: f64, im: f64) -> C64 {
        C64 { re, im }
    }

    /// e^{iθ}.
    #[inline]
    pub fn cis(theta: f64) -> C64 {
        C64::new(theta.cos(), theta.sin())
    }

    /// Squared magnitude.
    #[inline]
    pub fn norm2(self) -> f64 {
        self.re * self.re + self.im * self.im
    }
}

impl std::ops::Add for C64 {
    type Output = C64;
    #[inline]
    fn add(self, other: C64) -> C64 {
        C64::new(self.re + other.re, self.im + other.im)
    }
}

impl std::ops::Sub for C64 {
    type Output = C64;
    #[inline]
    fn sub(self, other: C64) -> C64 {
        C64::new(self.re - other.re, self.im - other.im)
    }
}

impl std::ops::Mul for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, other: C64) -> C64 {
        C64::new(
            self.re * other.re - self.im * other.im,
            self.re * other.im + self.im * other.re,
        )
    }
}

/// In-place iterative radix-2 Cooley–Tukey FFT. Length must be a power of
/// two. `inverse` computes the unscaled inverse transform (divide by `n`
/// yourself if you need the unitary inverse).
pub fn fft_inplace(x: &mut [C64], inverse: bool) {
    let n = x.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if i < j {
            x.swap(i, j);
        }
    }
    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = C64::cis(ang);
        let mut i = 0;
        while i < n {
            let mut w = C64::new(1.0, 0.0);
            for k in 0..len / 2 {
                let u = x[i + k];
                let v = x[i + k + len / 2] * w;
                x[i + k] = u + v;
                x[i + k + len / 2] = u - v;
                w = w * wlen;
            }
            i += len;
        }
        len <<= 1;
    }
}

/// O(n²) reference DFT, for testing the FFT.
pub fn dft_naive(x: &[C64], inverse: bool) -> Vec<C64> {
    let n = x.len();
    let sign = if inverse { 1.0 } else { -1.0 };
    (0..n)
        .map(|k| {
            let mut acc = C64::default();
            for (j, &v) in x.iter().enumerate() {
                let w = C64::cis(sign * 2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64);
                acc = acc + v * w;
            }
            acc
        })
        .collect()
}

/// Standard flop count of a radix-2 complex FFT of length `n`: 5·n·lg n.
pub fn fft_flops(n: usize) -> u64 {
    5 * n as u64 * n.trailing_zeros() as u64
}

/// Sequential 2-D FFT of a row-major `n × n` array (in place).
pub fn fft2d_seq(data: &mut [C64], n: usize) {
    assert_eq!(data.len(), n * n);
    for row in data.chunks_exact_mut(n) {
        fft_inplace(row, false);
    }
    transpose_square(data, n);
    for row in data.chunks_exact_mut(n) {
        fft_inplace(row, false);
    }
    transpose_square(data, n);
}

/// In-place transpose of a row-major square matrix.
pub fn transpose_square(data: &mut [C64], n: usize) {
    assert_eq!(data.len(), n * n);
    for i in 0..n {
        for j in (i + 1)..n {
            data.swap(i * n + j, j * n + i);
        }
    }
}

/// Distributed 2-D FFT over the simulated machine (call from every node of
/// a [`cm5_sim::Simulation::run_nodes`] closure).
///
/// `local_rows` holds this node's `n/P` consecutive rows of the `n × n`
/// input (row-major). Returns this node's rows of the **transposed** 2-D
/// FFT (the standard distributed formulation leaves the result transposed;
/// callers compare against `transpose(fft2d_seq(input))`).
///
/// Compute is charged at the machine's scalar flop rate; the transpose
/// moves real bytes through `alg`'s complete exchange.
pub fn distributed_fft2d(
    node: &CmmdNode,
    alg: ExchangeAlg,
    n: usize,
    local_rows: &[C64],
) -> Vec<C64> {
    let p = node.nodes();
    let me = node.id();
    assert!(
        n.is_multiple_of(p),
        "array side {n} must divide by node count {p}"
    );
    let rows = n / p;
    assert_eq!(local_rows.len(), rows * n);
    let mut data = local_rows.to_vec();

    // Phase 1: FFT my rows.
    for row in data.chunks_exact_mut(n) {
        fft_inplace(row, false);
    }
    node.flops(rows as u64 * fft_flops(n));

    // Transpose: block (me → j) = my rows restricted to j's columns.
    let blocks: Vec<Bytes> = (0..p)
        .map(|j| {
            let mut buf = BytesMut::with_capacity(rows * rows * 16);
            for r in 0..rows {
                for c in (j * rows)..((j + 1) * rows) {
                    let v = data[r * n + c];
                    buf.put_f64_le(v.re);
                    buf.put_f64_le(v.im);
                }
            }
            buf.freeze()
        })
        .collect();
    node.memcpy((rows * n * 16) as u64); // pack cost
    let received = complete_exchange_payload(node, alg, blocks);
    node.memcpy((rows * n * 16) as u64); // unpack cost

    // Reassemble: my new row r (global row me*rows + r of the transposed
    // array) takes element c from node c/rows' block.
    let mut out = vec![C64::default(); rows * n];
    for (j, block) in received.iter().enumerate() {
        // block = node j's rows × my columns, row-major (j's local r, my c).
        assert_eq!(block.len(), rows * rows * 16, "block size from node {j}");
        for jr in 0..rows {
            for mc in 0..rows {
                let off = (jr * rows + mc) * 16;
                let re = f64::from_le_bytes(block[off..off + 8].try_into().expect("8B"));
                let im = f64::from_le_bytes(block[off + 8..off + 16].try_into().expect("8B"));
                // In the transposed array, my row (me*rows + mc) column
                // (j*rows + jr) = original (j*rows + jr, me*rows + mc).
                out[mc * n + j * rows + jr] = C64::new(re, im);
            }
        }
    }
    let _ = me;

    // Phase 2: FFT the transposed rows.
    for row in out.chunks_exact_mut(n) {
        fft_inplace(row, false);
    }
    node.flops(rows as u64 * fft_flops(n));
    out
}

/// Op-mode cost model of the same 2-D FFT for the Table 5 sweep:
/// per node, phase-1 flops, the transpose's complete exchange of
/// `elem_bytes·n²/P²` bytes per pair (plus pack/unpack memcpys), phase-2
/// flops. `elem_bytes` is 8 for the paper's single-precision complex data.
pub fn fft2d_programs(alg: ExchangeAlg, procs: usize, n: usize, elem_bytes: u64) -> Vec<OpProgram> {
    assert!(
        n.is_multiple_of(procs),
        "array side {n} must divide by {procs}"
    );
    let rows = (n / procs) as u64;
    let phase_flops = rows * fft_flops(n);
    let pair_bytes = elem_bytes * rows * rows;
    let local_bytes = elem_bytes * rows * n as u64;
    let mut programs = cm5_core::exec::exchange_programs(alg, procs, pair_bytes);
    for prog in programs.iter_mut() {
        let mut full = Vec::with_capacity(prog.len() + 4);
        full.push(Op::Flops { flops: phase_flops });
        full.push(Op::Memcpy { bytes: local_bytes });
        full.append(prog);
        full.push(Op::Memcpy { bytes: local_bytes });
        full.push(Op::Flops { flops: phase_flops });
        *prog = full;
    }
    programs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: C64, b: C64, tol: f64) -> bool {
        (a.re - b.re).abs() < tol && (a.im - b.im).abs() < tol
    }

    fn test_signal(n: usize, seed: u64) -> Vec<C64> {
        let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15).max(3);
        let mut next = || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        (0..n).map(|_| C64::new(next(), next())).collect()
    }

    #[test]
    fn fft_matches_naive_dft() {
        for n in [1usize, 2, 4, 16, 64] {
            let x = test_signal(n, n as u64);
            let mut y = x.clone();
            fft_inplace(&mut y, false);
            let reference = dft_naive(&x, false);
            for (a, b) in y.iter().zip(&reference) {
                assert!(close(*a, *b, 1e-9), "n={n}: {a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn fft_roundtrip() {
        let n = 128;
        let x = test_signal(n, 9);
        let mut y = x.clone();
        fft_inplace(&mut y, false);
        fft_inplace(&mut y, true);
        for (a, b) in y.iter().zip(&x) {
            let scaled = C64::new(a.re / n as f64, a.im / n as f64);
            assert!(close(scaled, *b, 1e-12));
        }
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut x = vec![C64::default(); 8];
        x[0] = C64::new(1.0, 0.0);
        fft_inplace(&mut x, false);
        for v in &x {
            assert!(close(*v, C64::new(1.0, 0.0), 1e-12));
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fft_rejects_non_power_of_two() {
        let mut x = vec![C64::default(); 6];
        fft_inplace(&mut x, false);
    }

    #[test]
    fn transpose_is_involution() {
        let n = 16;
        let x = test_signal(n * n, 4);
        let mut y = x.clone();
        transpose_square(&mut y, n);
        assert_eq!(y[1], x[n]); // (0,1) ↔ (1,0)
        transpose_square(&mut y, n);
        assert_eq!(x, y);
    }

    #[test]
    fn fft2d_seq_separable() {
        // 2-D FFT of a separable impulse is flat ones.
        let n = 8;
        let mut data = vec![C64::default(); n * n];
        data[0] = C64::new(1.0, 0.0);
        fft2d_seq(&mut data, n);
        for v in &data {
            assert!(close(*v, C64::new(1.0, 0.0), 1e-12));
        }
    }

    #[test]
    fn fft_flops_formula() {
        assert_eq!(fft_flops(8), 5 * 8 * 3);
        assert_eq!(fft_flops(1024), 5 * 1024 * 10);
    }

    #[test]
    fn programs_include_compute_and_exchange() {
        let progs = fft2d_programs(ExchangeAlg::Pex, 8, 64, 8);
        assert_eq!(progs.len(), 8);
        for prog in &progs {
            assert!(matches!(prog[0], Op::Flops { .. }));
            assert!(matches!(prog.last(), Some(Op::Flops { .. })));
            let sends = prog
                .iter()
                .filter(|op| matches!(op, Op::Send { .. }))
                .count();
            assert_eq!(sends, 7, "one send per partner");
            // Per-pair bytes: 8 × (64/8)² = 512.
            let bytes = prog.iter().find_map(|op| match op {
                Op::Send { bytes, .. } => Some(*bytes),
                _ => None,
            });
            assert_eq!(bytes, Some(512));
        }
    }
}
